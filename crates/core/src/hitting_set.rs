//! Minimum-hitting-set machinery.
//!
//! The multi-source multi-destination Boolean tomography problem is an
//! instance of Minimum Hitting Set (§2.3 of the paper): find the smallest
//! set of links intersecting every failure set without touching any working
//! path. This module provides the paper's greedy heuristic (with the
//! weighted failure/reroute scoring of §3.2 and the link clusters of §3.4)
//! plus an exact branch-and-bound solver used as a test oracle and for the
//! greedy-vs-exact ablation bench.
//!
//! All edge sets are dense [`EdgeBitSet`]s: membership is one word load and
//! greedy scoring is popcount work, but iteration order (ascending edge id)
//! matches the `BTreeSet` representation this replaced, so the greedy's
//! tie-breaking — and therefore every hypothesis — is bit-identical.

use std::collections::{BTreeMap, BTreeSet};

use netdiag_obs::{names, RecorderHandle};

use crate::bitset::EdgeBitSet;
use crate::graph::EdgeId;

/// Scoring weights: `score(ℓ) = a·|C(ℓ)| + b·|R(ℓ)|` (§3.2; the paper uses
/// `a = b = 1`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Weights {
    /// Weight of unexplained failure sets.
    pub a: u32,
    /// Weight of unexplained reroute sets.
    pub b: u32,
}

impl Default for Weights {
    fn default() -> Self {
        Weights { a: 1, b: 1 }
    }
}

/// A hitting-set instance over graph edges.
///
/// ```
/// use netdiagnoser::{EdgeBitSet, EdgeId, HittingSetInstance, Weights};
///
/// // Two broken paths share edge 0: the greedy explains both with it.
/// let inst = HittingSetInstance {
///     failure_sets: vec![
///         EdgeBitSet::from([EdgeId(0), EdgeId(1)]),
///         EdgeBitSet::from([EdgeId(0), EdgeId(2)]),
///     ],
///     reroute_sets: vec![],
///     candidates: EdgeBitSet::from([EdgeId(0), EdgeId(1), EdgeId(2)]),
///     clusters: Default::default(),
/// };
/// let result = inst.greedy(Weights::default());
/// assert_eq!(result.hypothesis, vec![EdgeId(0)]);
/// // The exact solver agrees this is minimal.
/// assert_eq!(inst.exact(3).unwrap(), vec![EdgeId(0)]);
/// ```
#[derive(Clone, Debug, Default)]
pub struct HittingSetInstance {
    /// Failure sets (must be hit; weight `a`).
    pub failure_sets: Vec<EdgeBitSet>,
    /// Reroute sets (must be hit; weight `b`).
    pub reroute_sets: Vec<EdgeBitSet>,
    /// Candidate edges the hypothesis may draw from.
    pub candidates: EdgeBitSet,
    /// Link clusters (§3.4): for an unidentified link, the other links
    /// believed to be the same physical link. Covering one covers the
    /// failure sets of all cluster members.
    pub clusters: BTreeMap<EdgeId, Vec<EdgeId>>,
}

/// Result of the greedy heuristic.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GreedyResult {
    /// The hypothesis set, in selection order.
    pub hypothesis: Vec<EdgeId>,
    /// Indices of failure sets left unexplained (no candidate hits them).
    pub unexplained_failures: Vec<usize>,
    /// Indices of reroute sets left unexplained.
    pub unexplained_reroutes: Vec<usize>,
}

impl HittingSetInstance {
    /// The paper's greedy heuristic (Algorithm 1, extended with reroute
    /// sets and clusters). In each iteration *every* edge achieving the
    /// maximum score is added (Algorithm 1, lines 13–16). Stops when all
    /// sets are explained, candidates run out, or no candidate scores > 0.
    pub fn greedy(&self, weights: Weights) -> GreedyResult {
        self.greedy_recorded(weights, &RecorderHandle::noop())
    }

    /// [`HittingSetInstance::greedy`] reporting `hs.greedy_iters`, the
    /// `hs.candidates` instance size, and the bitset words touched by
    /// scoring (`hitting_set.words_scanned`) to `recorder`.
    pub fn greedy_recorded(&self, weights: Weights, recorder: &RecorderHandle) -> GreedyResult {
        let mut unexplained_f: BTreeSet<usize> = (0..self.failure_sets.len()).collect();
        let mut unexplained_r: BTreeSet<usize> = (0..self.reroute_sets.len()).collect();
        let mut candidates = self.candidates.clone();
        let mut hypothesis = Vec::new();
        let mut iterations: u64 = 0;
        let mut words_scanned: u64 = 0;

        // Coverage bitsets, built only for clustered candidates (clusters
        // are empty outside ND-LG): an unclustered edge covers via a single
        // `contains`, a clustered one via a word-wise intersection.
        let groups: BTreeMap<EdgeId, EdgeBitSet> = self
            .clusters
            .iter()
            .map(|(&e, members)| {
                let mut g: EdgeBitSet = members.iter().copied().collect();
                g.insert(e);
                (e, g)
            })
            .collect();
        let hits = |set: &EdgeBitSet, e: EdgeId, words: &mut u64| -> bool {
            match groups.get(&e) {
                Some(g) => {
                    *words += set.words().len().min(g.words().len()).max(1) as u64;
                    set.intersects(g)
                }
                None => {
                    *words += 1;
                    set.contains(e)
                }
            }
        };

        recorder.event(names::EV_HS_BEGIN, || {
            netdiag_obs::EventPayload::new()
                .field("candidates", self.candidates.len())
                .field("failures", self.failure_sets.len())
                .field("reroutes", self.reroute_sets.len())
                .field("clusters", self.clusters.len())
        });

        // Loop while work remains (Algorithm 1 line 7): some set is still
        // unexplained and candidates are left.
        #[allow(clippy::nonminimal_bool)] // mirrors the paper's condition
        while !candidates.is_empty() && !(unexplained_f.is_empty() && unexplained_r.is_empty()) {
            iterations += 1;
            // Score every candidate (ascending edge id, the BTreeSet order).
            let mut best_score = 0u64;
            let mut best: Vec<EdgeId> = Vec::new();
            for e in candidates.iter() {
                let c = unexplained_f
                    .iter()
                    .filter(|&&i| hits(&self.failure_sets[i], e, &mut words_scanned))
                    .count() as u64;
                let r = unexplained_r
                    .iter()
                    .filter(|&&i| hits(&self.reroute_sets[i], e, &mut words_scanned))
                    .count() as u64;
                let score = u64::from(weights.a) * c + u64::from(weights.b) * r;
                match score.cmp(&best_score) {
                    std::cmp::Ordering::Greater => {
                        best_score = score;
                        best = vec![e];
                    }
                    std::cmp::Ordering::Equal if score > 0 => best.push(e),
                    _ => {}
                }
            }
            if best_score == 0 {
                break; // remaining sets cannot be explained by any candidate
            }
            for e in best {
                // Trace-only coverage capture *before* the retains, with a
                // scratch counter so `words_scanned` stays identical with
                // and without tracing.
                let covered = recorder.trace_enabled().then(|| {
                    let mut scratch = 0u64;
                    let covered_f: Vec<netdiag_obs::Value> = unexplained_f
                        .iter()
                        .filter(|&&i| hits(&self.failure_sets[i], e, &mut scratch))
                        .map(|&i| netdiag_obs::Value::from(i))
                        .collect();
                    let covered_r: Vec<netdiag_obs::Value> = unexplained_r
                        .iter()
                        .filter(|&&i| hits(&self.reroute_sets[i], e, &mut scratch))
                        .map(|&i| netdiag_obs::Value::from(i))
                        .collect();
                    (covered_f, covered_r)
                });
                unexplained_f.retain(|&i| !hits(&self.failure_sets[i], e, &mut words_scanned));
                unexplained_r.retain(|&i| !hits(&self.reroute_sets[i], e, &mut words_scanned));
                candidates.remove(e);
                hypothesis.push(e);
                if let Some((covered_f, covered_r)) = covered {
                    recorder.event(names::EV_HS_PICK, || {
                        netdiag_obs::EventPayload::new()
                            .field("iter", iterations)
                            .field("edge", e.index())
                            .field("score", best_score)
                            .field("covered_failures", covered_f)
                            .field("covered_reroutes", covered_r)
                            .field("remaining_failures", unexplained_f.len())
                            .field("remaining_reroutes", unexplained_r.len())
                    });
                }
            }
        }

        if recorder.enabled() {
            recorder.add(names::HS_GREEDY_ITERS, iterations);
            recorder.observe(names::HS_CANDIDATES, self.candidates.len() as u64);
            recorder.add(names::HS_WORDS_SCANNED, words_scanned);
        }

        GreedyResult {
            hypothesis,
            unexplained_failures: unexplained_f.into_iter().collect(),
            unexplained_reroutes: unexplained_r.into_iter().collect(),
        }
    }

    /// Exact minimum hitting set via iterative-deepening branch and bound
    /// (ignores clusters; failure and reroute sets are all treated as
    /// must-hit). Branches on the smallest unhit set. Returns `None` when
    /// no hitting set exists within `max_size` — or when the node budget
    /// (10M expansions) runs out; use only on modest instances.
    pub fn exact(&self, max_size: usize) -> Option<Vec<EdgeId>> {
        // Restrict each set to candidates; an empty restricted set is
        // unhittable.
        let sets: Vec<Vec<EdgeId>> = self
            .failure_sets
            .iter()
            .chain(self.reroute_sets.iter())
            .map(|s| s.iter().filter(|&e| self.candidates.contains(e)).collect())
            .collect();
        if sets.iter().any(|s: &Vec<EdgeId>| s.is_empty()) {
            return None;
        }
        let mut nodes: u64 = 10_000_000;
        for k in 0..=max_size {
            let mut chosen = Vec::new();
            if Self::search(&sets, &mut chosen, k, &mut nodes) {
                chosen.sort_unstable();
                return Some(chosen);
            }
            if nodes == 0 {
                return None; // budget exhausted: give up
            }
        }
        None
    }

    /// Depth-limited search: hit every set using at most `budget` more
    /// elements, branching on the smallest unhit set.
    fn search(
        sets: &[Vec<EdgeId>],
        chosen: &mut Vec<EdgeId>,
        budget: usize,
        nodes: &mut u64,
    ) -> bool {
        if *nodes == 0 {
            return false;
        }
        *nodes -= 1;
        // Pick the smallest unhit set (fewest branches).
        let unhit = sets
            .iter()
            .filter(|s| !s.iter().any(|e| chosen.contains(e)))
            .min_by_key(|s| s.len());
        let Some(unhit) = unhit else {
            return true; // all hit
        };
        if budget == 0 {
            return false;
        }
        for &e in unhit {
            chosen.push(e);
            if Self::search(sets, chosen, budget - 1, nodes) {
                return true;
            }
            chosen.pop();
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(i: u32) -> EdgeId {
        EdgeId(i)
    }

    fn set(ids: &[u32]) -> EdgeBitSet {
        ids.iter().map(|&i| e(i)).collect()
    }

    fn instance(fail: &[&[u32]], cands: &[u32]) -> HittingSetInstance {
        HittingSetInstance {
            failure_sets: fail.iter().map(|s| set(s)).collect(),
            reroute_sets: Vec::new(),
            candidates: set(cands),
            clusters: BTreeMap::new(),
        }
    }

    #[test]
    fn single_set_picks_all_ties() {
        // One failure set {0,1,2}: all three tie at score 1 -> all added
        // (the paper's Algorithm 1 adds the entire argmax set).
        let inst = instance(&[&[0, 1, 2]], &[0, 1, 2]);
        let r = inst.greedy(Weights::default());
        assert_eq!(r.hypothesis.len(), 3);
        assert!(r.unexplained_failures.is_empty());
    }

    #[test]
    fn shared_edge_wins() {
        // Sets {0,1}, {0,2}: edge 0 hits both, chosen alone.
        let inst = instance(&[&[0, 1], &[0, 2]], &[0, 1, 2]);
        let r = inst.greedy(Weights::default());
        assert_eq!(r.hypothesis, vec![e(0)]);
    }

    #[test]
    fn working_links_not_candidates() {
        // Set {0,1} but only 1 is a candidate (0 was on a working path).
        let inst = instance(&[&[0, 1]], &[1]);
        let r = inst.greedy(Weights::default());
        assert_eq!(r.hypothesis, vec![e(1)]);
    }

    #[test]
    fn unexplainable_set_reported() {
        // Set {0} with empty candidates: greedy stops, reports index 0.
        let inst = instance(&[&[0]], &[]);
        let r = inst.greedy(Weights::default());
        assert!(r.hypothesis.is_empty());
        assert_eq!(r.unexplained_failures, vec![0]);
    }

    #[test]
    fn reroute_sets_contribute_to_score() {
        // Failure set {1}; reroute set {0}. Both must be hit.
        let inst = HittingSetInstance {
            failure_sets: vec![set(&[1])],
            reroute_sets: vec![set(&[0])],
            candidates: set(&[0, 1]),
            clusters: BTreeMap::new(),
        };
        let r = inst.greedy(Weights::default());
        let h: BTreeSet<_> = r.hypothesis.iter().copied().collect();
        assert_eq!(h, set(&[0, 1]).iter().collect());
        assert!(r.unexplained_reroutes.is_empty());
    }

    #[test]
    fn weights_bias_choice() {
        // Edge 0 covers 2 reroute sets, edge 1 covers 1 failure set; with
        // a=10, b=1 the failure edge scores higher and is picked first.
        let inst = HittingSetInstance {
            failure_sets: vec![set(&[1])],
            reroute_sets: vec![set(&[0]), set(&[0])],
            candidates: set(&[0, 1]),
            clusters: BTreeMap::new(),
        };
        let r = inst.greedy(Weights { a: 10, b: 1 });
        assert_eq!(r.hypothesis[0], e(1));
    }

    #[test]
    fn clusters_extend_coverage() {
        // Edge 0 clusters with edge 5; failure sets {0} and {5}. Picking 0
        // explains both.
        let mut clusters = BTreeMap::new();
        clusters.insert(e(0), vec![e(5)]);
        let inst = HittingSetInstance {
            failure_sets: vec![set(&[0]), set(&[5])],
            reroute_sets: Vec::new(),
            candidates: set(&[0]),
            clusters,
        };
        let r = inst.greedy(Weights::default());
        assert_eq!(r.hypothesis, vec![e(0)]);
        assert!(r.unexplained_failures.is_empty());
    }

    #[test]
    fn exact_finds_minimum() {
        // Greedy can be fooled; exact cannot. Sets: {0,1},{0,2},{1,2}:
        // minimum hitting set has size 2.
        let inst = instance(&[&[0, 1], &[0, 2], &[1, 2]], &[0, 1, 2]);
        let exact = inst.exact(3).unwrap();
        assert_eq!(exact.len(), 2);
    }

    #[test]
    fn exact_none_when_unhittable() {
        let inst = instance(&[&[0]], &[1]);
        assert_eq!(inst.exact(5), None);
    }

    #[test]
    fn exact_respects_max_size() {
        let inst = instance(&[&[0], &[1], &[2]], &[0, 1, 2]);
        assert_eq!(inst.exact(2), None);
        assert_eq!(inst.exact(3).unwrap().len(), 3);
    }

    #[test]
    fn greedy_is_deterministic() {
        let inst = instance(&[&[0, 1], &[2, 3], &[0, 2]], &[0, 1, 2, 3]);
        let r1 = inst.greedy(Weights::default());
        let r2 = inst.greedy(Weights::default());
        assert_eq!(r1, r2);
    }

    #[test]
    fn words_scanned_reported() {
        use netdiag_obs::RecorderHandle;
        let inst = instance(&[&[0, 1], &[0, 2]], &[0, 1, 2]);
        let (recorder, sink) = RecorderHandle::in_memory();
        inst.greedy_recorded(Weights::default(), &recorder);
        let report = sink.report();
        assert!(report.counter("hitting_set.words_scanned") > 0);
    }
}
