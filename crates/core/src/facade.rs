//! A one-stop configuration facade over the four algorithms — convenient
//! for downstream users who pick the variant at runtime (the CLI and the
//! experiment harness go through it too).
//!
//! The entry point is [`NetDiagnoser::builder`]: configure the algorithm,
//! weights and optional inputs once, then call
//! [`diagnose`](NetDiagnoser::diagnose) per incident. Algorithms that
//! depend on an input refuse to run without it ([`DiagnoseError`]) unless
//! [`allow_missing_inputs`](NetDiagnoserBuilder::allow_missing_inputs)
//! opts back into the lenient empty-substitute behaviour.

use netdiag_obs::RecorderHandle;

use crate::algorithms::{nd_bgpigp_recorded, nd_edge_recorded, nd_lg_recorded, tomo_recorded};
use crate::diagnosis::Diagnosis;
use crate::hitting_set::Weights;
use crate::observation::{IpToAs, LookingGlass, Observations, RoutingFeed};

/// Which diagnosis algorithm to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum Algorithm {
    /// Plain multi-AS Boolean tomography (§2).
    Tomo,
    /// Logical links + reroute sets (§3.1–3.2) — the best choice without
    /// ISP cooperation.
    #[default]
    NdEdge,
    /// ND-edge + AS-X's control plane (§3.3) — requires a routing feed.
    NdBgpIgp,
    /// ND-bgpigp + Looking Glass mapping of unidentified hops (§3.4).
    NdLg,
}

impl Algorithm {
    /// Every variant, in paper order.
    pub const ALL: [Algorithm; 4] = [
        Algorithm::Tomo,
        Algorithm::NdEdge,
        Algorithm::NdBgpIgp,
        Algorithm::NdLg,
    ];

    /// The canonical (CLI and [`Display`](std::fmt::Display)) name.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Tomo => "tomo",
            Algorithm::NdEdge => "nd-edge",
            Algorithm::NdBgpIgp => "nd-bgpigp",
            Algorithm::NdLg => "nd-lg",
        }
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Algorithm {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "tomo" => Ok(Algorithm::Tomo),
            "nd-edge" | "nd_edge" => Ok(Algorithm::NdEdge),
            "nd-bgpigp" | "nd_bgpigp" => Ok(Algorithm::NdBgpIgp),
            "nd-lg" | "nd_lg" => Ok(Algorithm::NdLg),
            other => Err(format!("unknown algorithm {other:?}")),
        }
    }
}

/// Why [`NetDiagnoser::diagnose`] refused to run.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum DiagnoseError {
    /// The algorithm consumes AS-X's control-plane feed but none was
    /// configured on the builder.
    MissingFeed {
        /// The algorithm that needed the feed.
        algorithm: Algorithm,
    },
    /// ND-LG maps unidentified hops via Looking Glass queries but no
    /// Looking Glass was configured on the builder.
    MissingLookingGlass,
}

impl std::fmt::Display for DiagnoseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiagnoseError::MissingFeed { algorithm } => write!(
                f,
                "{algorithm} needs a routing feed; configure one with \
                 `.routing_feed(..)` or opt into an empty substitute with \
                 `.allow_missing_inputs()`"
            ),
            DiagnoseError::MissingLookingGlass => write!(
                f,
                "nd-lg needs a Looking Glass; configure one with \
                 `.looking_glass(..)` or opt into leaving unidentified \
                 hops unmapped with `.allow_missing_inputs()`"
            ),
        }
    }
}

impl std::error::Error for DiagnoseError {}

/// A Looking Glass with no servers at all (lenient ND-LG fallback).
struct NoLg;

impl LookingGlass for NoLg {
    fn as_path(
        &self,
        _: netdiag_topology::AsId,
        _: std::net::Ipv4Addr,
    ) -> Option<Vec<netdiag_topology::AsId>> {
        None
    }
}

/// Configures a [`NetDiagnoser`].
///
/// Created by [`NetDiagnoser::builder`]; every setter consumes and returns
/// the builder so a diagnoser is assembled in one expression.
#[derive(Clone, Default)]
pub struct NetDiagnoserBuilder<'a> {
    algorithm: Algorithm,
    weights: Weights,
    feed: Option<&'a RoutingFeed>,
    lg: Option<&'a dyn LookingGlass>,
    recorder: RecorderHandle,
    allow_missing_inputs: bool,
}

impl std::fmt::Debug for NetDiagnoserBuilder<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetDiagnoserBuilder")
            .field("algorithm", &self.algorithm)
            .field("weights", &self.weights)
            .field("feed", &self.feed.is_some())
            .field("looking_glass", &self.lg.is_some())
            .field("allow_missing_inputs", &self.allow_missing_inputs)
            .finish()
    }
}

impl<'a> NetDiagnoserBuilder<'a> {
    /// Selects the algorithm variant (default: [`Algorithm::NdEdge`]).
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Sets the greedy scoring weights (§3.2; default `a = b = 1`).
    pub fn weights(mut self, weights: Weights) -> Self {
        self.weights = weights;
        self
    }

    /// Attaches AS-X's control-plane feed (consumed by
    /// [`Algorithm::NdBgpIgp`] and [`Algorithm::NdLg`]).
    pub fn routing_feed(mut self, feed: &'a RoutingFeed) -> Self {
        self.feed = Some(feed);
        self
    }

    /// Attaches a Looking Glass oracle (consumed by [`Algorithm::NdLg`]).
    pub fn looking_glass(mut self, lg: &'a dyn LookingGlass) -> Self {
        self.lg = Some(lg);
        self
    }

    /// Attaches an instrumentation recorder; every diagnosis reports its
    /// greedy iterations, candidate-set size, feed refinements and
    /// hypothesis size to it (default: the no-op recorder).
    pub fn recorder(mut self, recorder: RecorderHandle) -> Self {
        self.recorder = recorder;
        self
    }

    /// Runs feed-dependent algorithms even when no feed (or, for ND-LG,
    /// no Looking Glass) is configured, substituting an ISP that observed
    /// nothing — the behaviour of the old constructor API.
    pub fn allow_missing_inputs(mut self) -> Self {
        self.allow_missing_inputs = true;
        self
    }

    /// Finishes the configuration.
    pub fn build(self) -> NetDiagnoser<'a> {
        NetDiagnoser {
            algorithm: self.algorithm,
            weights: self.weights,
            feed: self.feed,
            lg: self.lg,
            recorder: self.recorder,
            allow_missing_inputs: self.allow_missing_inputs,
        }
    }
}

/// A configured troubleshooter.
///
/// ```
/// use netdiagnoser::{Algorithm, NetDiagnoser, RoutingFeed};
/// let feed = RoutingFeed::default();
/// let nd = NetDiagnoser::builder()
///     .algorithm(Algorithm::NdBgpIgp)
///     .routing_feed(&feed)
///     .build();
/// assert_eq!(nd.algorithm(), Algorithm::NdBgpIgp);
/// ```
#[derive(Clone)]
pub struct NetDiagnoser<'a> {
    algorithm: Algorithm,
    weights: Weights,
    feed: Option<&'a RoutingFeed>,
    lg: Option<&'a dyn LookingGlass>,
    recorder: RecorderHandle,
    allow_missing_inputs: bool,
}

impl std::fmt::Debug for NetDiagnoser<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetDiagnoser")
            .field("algorithm", &self.algorithm)
            .field("weights", &self.weights)
            .field("feed", &self.feed.is_some())
            .field("looking_glass", &self.lg.is_some())
            .field("allow_missing_inputs", &self.allow_missing_inputs)
            .finish()
    }
}

impl Default for NetDiagnoser<'_> {
    fn default() -> Self {
        NetDiagnoser::builder().build()
    }
}

impl<'a> NetDiagnoser<'a> {
    /// Starts configuring a troubleshooter.
    pub fn builder() -> NetDiagnoserBuilder<'a> {
        NetDiagnoserBuilder::default()
    }

    /// The configured algorithm variant.
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// The configured greedy scoring weights.
    pub fn weights(&self) -> Weights {
        self.weights
    }

    /// Runs the configured diagnosis.
    ///
    /// Fails with [`DiagnoseError::MissingFeed`] when
    /// [`Algorithm::NdBgpIgp`] or [`Algorithm::NdLg`] was selected without
    /// a [`routing_feed`](NetDiagnoserBuilder::routing_feed), and with
    /// [`DiagnoseError::MissingLookingGlass`] when [`Algorithm::NdLg`] was
    /// selected without a
    /// [`looking_glass`](NetDiagnoserBuilder::looking_glass) — unless the
    /// builder opted into
    /// [`allow_missing_inputs`](NetDiagnoserBuilder::allow_missing_inputs).
    pub fn diagnose(
        &self,
        obs: &Observations,
        ip2as: &dyn IpToAs,
    ) -> Result<Diagnosis, DiagnoseError> {
        let recorder = &self.recorder;
        let empty_feed = RoutingFeed::default();
        let feed = match (self.feed, self.allow_missing_inputs) {
            (Some(feed), _) => feed,
            (None, true) => &empty_feed,
            (None, false) => match self.algorithm {
                Algorithm::Tomo | Algorithm::NdEdge => &empty_feed,
                Algorithm::NdBgpIgp | Algorithm::NdLg => {
                    return Err(DiagnoseError::MissingFeed {
                        algorithm: self.algorithm,
                    })
                }
            },
        };
        match self.algorithm {
            Algorithm::Tomo => Ok(tomo_recorded(obs, ip2as, recorder)),
            Algorithm::NdEdge => Ok(nd_edge_recorded(obs, ip2as, self.weights, recorder)),
            Algorithm::NdBgpIgp => Ok(nd_bgpigp_recorded(obs, ip2as, feed, self.weights, recorder)),
            Algorithm::NdLg => {
                let lg: &dyn LookingGlass = match (self.lg, self.allow_missing_inputs) {
                    (Some(lg), _) => lg,
                    (None, true) => &NoLg,
                    (None, false) => return Err(DiagnoseError::MissingLookingGlass),
                };
                Ok(nd_lg_recorded(obs, ip2as, feed, lg, self.weights, recorder))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observation::{Hop, IpToAsFn, ProbePath, SensorMeta, Snapshot};
    use netdiag_topology::{AsId, SensorId};
    use proptest::prelude::*;
    use std::net::Ipv4Addr;

    fn obs() -> Observations {
        let r = Ipv4Addr::new(10, 0, 1, 1);
        let dst = Ipv4Addr::new(10, 2, 0, 200);
        Observations {
            sensors: vec![
                SensorMeta {
                    id: SensorId(0),
                    addr: Ipv4Addr::new(10, 1, 0, 200),
                    as_id: AsId(1),
                },
                SensorMeta {
                    id: SensorId(1),
                    addr: dst,
                    as_id: AsId(2),
                },
            ],
            before: Snapshot {
                paths: vec![ProbePath {
                    src: SensorId(0),
                    dst: SensorId(1),
                    hops: vec![Hop::Addr(r), Hop::Addr(dst)],
                    reached: true,
                }],
            },
            after: Snapshot {
                paths: vec![ProbePath {
                    src: SensorId(0),
                    dst: SensorId(1),
                    hops: vec![Hop::Addr(r)],
                    reached: false,
                }],
            },
        }
    }

    fn ip2as() -> IpToAsFn<impl Fn(Ipv4Addr) -> Option<AsId>> {
        IpToAsFn(|a: Ipv4Addr| Some(AsId(u32::from(a.octets()[1]))))
    }

    #[test]
    fn parses_algorithm_names() {
        assert_eq!("tomo".parse(), Ok(Algorithm::Tomo));
        assert_eq!("nd-edge".parse(), Ok(Algorithm::NdEdge));
        assert_eq!("nd_bgpigp".parse(), Ok(Algorithm::NdBgpIgp));
        assert_eq!("nd-lg".parse(), Ok(Algorithm::NdLg));
        assert_eq!("ND-LG".parse(), Ok(Algorithm::NdLg));
        assert_eq!("Tomo".parse(), Ok(Algorithm::Tomo));
        assert!("nd-???".parse::<Algorithm>().is_err());
    }

    proptest! {
        #[test]
        fn display_round_trips_through_fromstr(i in 0usize..4) {
            let algorithm = Algorithm::ALL[i];
            prop_assert_eq!(algorithm.to_string().parse::<Algorithm>(), Ok(algorithm));
            prop_assert_eq!(
                algorithm.to_string().to_ascii_uppercase().parse::<Algorithm>(),
                Ok(algorithm)
            );
        }
    }

    #[test]
    fn every_variant_runs_leniently_without_optional_inputs() {
        let ip2as = ip2as();
        let o = obs();
        for algorithm in Algorithm::ALL {
            let d = NetDiagnoser::builder()
                .algorithm(algorithm)
                .allow_missing_inputs()
                .build()
                .diagnose(&o, &ip2as)
                .unwrap();
            assert!(!d.is_empty(), "{algorithm:?} finds the only suspect link");
        }
    }

    #[test]
    fn feed_dependent_variants_refuse_to_run_without_a_feed() {
        let ip2as = ip2as();
        let o = obs();
        for algorithm in [Algorithm::NdBgpIgp, Algorithm::NdLg] {
            let err = NetDiagnoser::builder()
                .algorithm(algorithm)
                .build()
                .diagnose(&o, &ip2as)
                .unwrap_err();
            assert_eq!(err, DiagnoseError::MissingFeed { algorithm });
        }
    }

    #[test]
    fn ndlg_refuses_to_run_without_a_looking_glass() {
        let ip2as = ip2as();
        let o = obs();
        let feed = RoutingFeed::default();
        let err = NetDiagnoser::builder()
            .algorithm(Algorithm::NdLg)
            .routing_feed(&feed)
            .build()
            .diagnose(&o, &ip2as)
            .unwrap_err();
        assert_eq!(err, DiagnoseError::MissingLookingGlass);
    }

    #[test]
    fn configured_feed_is_used() {
        let ip2as = ip2as();
        let o = obs();
        let feed = RoutingFeed::default();
        let d = NetDiagnoser::builder()
            .algorithm(Algorithm::NdBgpIgp)
            .routing_feed(&feed)
            .build()
            .diagnose(&o, &ip2as)
            .unwrap();
        assert!(!d.is_empty());
    }

    #[test]
    fn default_is_ndedge_with_paper_weights() {
        let nd = NetDiagnoser::default();
        assert_eq!(nd.algorithm(), Algorithm::NdEdge);
        assert_eq!(nd.weights(), Weights { a: 1, b: 1 });
    }

    #[test]
    fn recorder_sees_diagnosis_counters() {
        let (recorder, sink) = RecorderHandle::in_memory();
        let ip2as = ip2as();
        let o = obs();
        let d = NetDiagnoser::builder()
            .recorder(recorder)
            .build()
            .diagnose(&o, &ip2as)
            .unwrap();
        let report = sink.report();
        assert_eq!(report.counter(netdiag_obs::names::DIAG_RUNS), 1);
        assert!(report.counter(netdiag_obs::names::HS_GREEDY_ITERS) >= 1);
        let h = report
            .histogram(netdiag_obs::names::DIAG_HYPOTHESIS_SIZE)
            .expect("hypothesis size observed");
        assert_eq!(h.sum, d.len() as u64);
    }
}
