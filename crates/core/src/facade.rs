//! A one-stop configuration facade over the four algorithms — convenient
//! for downstream users who pick the variant at runtime (the CLI, the
//! experiment harness and the serve daemon go through it too).
//!
//! The entry point is [`NetDiagnoser::builder`]: configure the algorithm,
//! weights and optional inputs once, then call
//! [`diagnose`](NetDiagnoser::diagnose) (or
//! [`report`](NetDiagnoser::report)) per incident. Algorithms that depend
//! on an input refuse to run without it ([`DiagnoseError`]) unless
//! [`allow_missing_inputs`](NetDiagnoserBuilder::allow_missing_inputs)
//! opts back into the lenient empty-substitute behaviour.
//!
//! The builder *owns* its inputs (behind [`Arc`], so sharing is cheap): a
//! built [`NetDiagnoser`] is `Send + Sync + 'static` and can be cloned
//! into worker threads or held for the lifetime of a daemon — the reason
//! the old borrowing setters were retired.

use std::sync::Arc;

use netdiag_obs::{names, RecorderHandle};

use crate::algorithms::{nd_bgpigp_recorded, nd_edge_recorded, nd_lg_recorded, tomo_recorded};
use crate::config::DiagnosticsConfig;
use crate::diagnosis::Diagnosis;
use crate::hitting_set::Weights;
use crate::observation::{IpToAs, LookingGlass, Observations, RoutingFeed};
use crate::report::DiagnosticReport;

/// Which diagnosis algorithm to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum Algorithm {
    /// Plain multi-AS Boolean tomography (§2).
    Tomo,
    /// Logical links + reroute sets (§3.1–3.2) — the best choice without
    /// ISP cooperation.
    #[default]
    NdEdge,
    /// ND-edge + AS-X's control plane (§3.3) — requires a routing feed.
    NdBgpIgp,
    /// ND-bgpigp + Looking Glass mapping of unidentified hops (§3.4).
    NdLg,
}

impl Algorithm {
    /// Every variant, in paper order.
    pub const ALL: [Algorithm; 4] = [
        Algorithm::Tomo,
        Algorithm::NdEdge,
        Algorithm::NdBgpIgp,
        Algorithm::NdLg,
    ];

    /// The canonical (CLI and [`Display`](std::fmt::Display)) name.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Tomo => "tomo",
            Algorithm::NdEdge => "nd-edge",
            Algorithm::NdBgpIgp => "nd-bgpigp",
            Algorithm::NdLg => "nd-lg",
        }
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Algorithm {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "tomo" => Ok(Algorithm::Tomo),
            "nd-edge" | "nd_edge" => Ok(Algorithm::NdEdge),
            "nd-bgpigp" | "nd_bgpigp" => Ok(Algorithm::NdBgpIgp),
            "nd-lg" | "nd_lg" => Ok(Algorithm::NdLg),
            other => Err(format!("unknown algorithm {other:?}")),
        }
    }
}

/// Why [`NetDiagnoser::diagnose`] refused to run.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum DiagnoseError {
    /// The algorithm consumes AS-X's control-plane feed but none was
    /// configured on the builder.
    MissingFeed {
        /// The algorithm that needed the feed.
        algorithm: Algorithm,
    },
    /// ND-LG maps unidentified hops via Looking Glass queries but no
    /// Looking Glass was configured on the builder.
    MissingLookingGlass,
}

impl std::fmt::Display for DiagnoseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiagnoseError::MissingFeed { algorithm } => write!(
                f,
                "{algorithm} needs a routing feed; configure one with \
                 `.routing_feed(..)` or opt into an empty substitute with \
                 `.allow_missing_inputs()`"
            ),
            DiagnoseError::MissingLookingGlass => write!(
                f,
                "nd-lg needs a Looking Glass; configure one with \
                 `.looking_glass(..)` or opt into leaving unidentified \
                 hops unmapped with `.allow_missing_inputs()`"
            ),
        }
    }
}

impl std::error::Error for DiagnoseError {}

/// A Looking Glass with no servers at all (lenient ND-LG fallback).
struct NoLg;

impl LookingGlass for NoLg {
    fn as_path(
        &self,
        _: netdiag_topology::AsId,
        _: std::net::Ipv4Addr,
    ) -> Option<Vec<netdiag_topology::AsId>> {
        None
    }
}

/// Configures a [`NetDiagnoser`].
///
/// Created by [`NetDiagnoser::builder`]; every setter consumes and returns
/// the builder so a diagnoser is assembled in one expression. Inputs are
/// stored owned (behind [`Arc`]), so the built diagnoser is
/// `Send + Sync + 'static`.
#[derive(Clone, Default)]
pub struct NetDiagnoserBuilder {
    config: DiagnosticsConfig,
    feed: Option<Arc<RoutingFeed>>,
    lg: Option<Arc<dyn LookingGlass + Send + Sync>>,
    recorder: RecorderHandle,
}

impl std::fmt::Debug for NetDiagnoserBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetDiagnoserBuilder")
            .field("config", &self.config)
            .field("feed", &self.feed.is_some())
            .field("looking_glass", &self.lg.is_some())
            .finish()
    }
}

impl NetDiagnoserBuilder {
    /// Selects the algorithm variant (default: [`Algorithm::NdEdge`]).
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.config.algorithm = algorithm;
        self
    }

    /// Sets the greedy scoring weights (§3.2; default `a = b = 1`).
    pub fn weights(mut self, weights: Weights) -> Self {
        self.config.weights = weights;
        self
    }

    /// Replaces the whole diagnostics configuration — algorithm, weights,
    /// lenient-input flag and reporting thresholds in one value (see
    /// [`DiagnosticsConfig`]). Later individual setters still apply on
    /// top.
    pub fn config(mut self, config: DiagnosticsConfig) -> Self {
        self.config = config;
        self
    }

    /// Attaches AS-X's control-plane feed (consumed by
    /// [`Algorithm::NdBgpIgp`] and [`Algorithm::NdLg`]).
    ///
    /// Accepts the feed by value or already shared
    /// (`Arc<RoutingFeed>`) — either way the diagnoser owns it.
    pub fn routing_feed(mut self, feed: impl Into<Arc<RoutingFeed>>) -> Self {
        self.feed = Some(feed.into());
        self
    }

    /// Attaches a Looking Glass oracle (consumed by [`Algorithm::NdLg`]),
    /// taking ownership.
    pub fn looking_glass<L>(mut self, lg: L) -> Self
    where
        L: LookingGlass + Send + Sync + 'static,
    {
        self.lg = Some(Arc::new(lg));
        self
    }

    /// Attaches an already-shared Looking Glass (e.g. one long-lived
    /// oracle serving many concurrent diagnosers).
    pub fn looking_glass_shared(mut self, lg: Arc<dyn LookingGlass + Send + Sync>) -> Self {
        self.lg = Some(lg);
        self
    }

    /// Attaches an instrumentation recorder; every diagnosis reports its
    /// greedy iterations, candidate-set size, feed refinements and
    /// hypothesis size to it (default: the no-op recorder).
    pub fn recorder(mut self, recorder: RecorderHandle) -> Self {
        self.recorder = recorder;
        self
    }

    /// Runs feed-dependent algorithms even when no feed (or, for ND-LG,
    /// no Looking Glass) is configured, substituting an ISP that observed
    /// nothing — the behaviour of the old constructor API.
    pub fn allow_missing_inputs(mut self) -> Self {
        self.config.allow_missing_inputs = true;
        self
    }

    /// Finishes the configuration.
    pub fn build(self) -> NetDiagnoser {
        NetDiagnoser {
            config: self.config,
            feed: self.feed,
            lg: self.lg,
            recorder: self.recorder,
        }
    }
}

/// A configured troubleshooter.
///
/// Owns its inputs, so it is `Send + Sync + 'static`: clone it into
/// worker threads, store it in a daemon, run diagnoses concurrently.
///
/// ```
/// use netdiagnoser::{Algorithm, NetDiagnoser, RoutingFeed};
/// let nd = NetDiagnoser::builder()
///     .algorithm(Algorithm::NdBgpIgp)
///     .routing_feed(RoutingFeed::default())
///     .build();
/// assert_eq!(nd.algorithm(), Algorithm::NdBgpIgp);
/// ```
#[derive(Clone)]
pub struct NetDiagnoser {
    config: DiagnosticsConfig,
    feed: Option<Arc<RoutingFeed>>,
    lg: Option<Arc<dyn LookingGlass + Send + Sync>>,
    recorder: RecorderHandle,
}

impl std::fmt::Debug for NetDiagnoser {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetDiagnoser")
            .field("config", &self.config)
            .field("feed", &self.feed.is_some())
            .field("looking_glass", &self.lg.is_some())
            .finish()
    }
}

impl Default for NetDiagnoser {
    fn default() -> Self {
        NetDiagnoser::builder().build()
    }
}

impl NetDiagnoser {
    /// Starts configuring a troubleshooter.
    pub fn builder() -> NetDiagnoserBuilder {
        NetDiagnoserBuilder::default()
    }

    /// The configured algorithm variant.
    pub fn algorithm(&self) -> Algorithm {
        self.config.algorithm
    }

    /// The configured greedy scoring weights.
    pub fn weights(&self) -> Weights {
        self.config.weights
    }

    /// The full diagnostics configuration.
    pub fn config(&self) -> &DiagnosticsConfig {
        &self.config
    }

    /// Runs the configured diagnosis.
    ///
    /// Fails with [`DiagnoseError::MissingFeed`] when
    /// [`Algorithm::NdBgpIgp`] or [`Algorithm::NdLg`] was selected without
    /// a [`routing_feed`](NetDiagnoserBuilder::routing_feed), and with
    /// [`DiagnoseError::MissingLookingGlass`] when [`Algorithm::NdLg`] was
    /// selected without a
    /// [`looking_glass`](NetDiagnoserBuilder::looking_glass) — unless the
    /// builder opted into
    /// [`allow_missing_inputs`](NetDiagnoserBuilder::allow_missing_inputs).
    pub fn diagnose(
        &self,
        obs: &Observations,
        ip2as: &dyn IpToAs,
    ) -> Result<Diagnosis, DiagnoseError> {
        let recorder = &self.recorder;
        let algorithm = self.config.algorithm;
        let weights = self.config.weights;
        let empty_feed = RoutingFeed::default();
        let feed: &RoutingFeed = match (&self.feed, self.config.allow_missing_inputs) {
            (Some(feed), _) => feed,
            (None, true) => &empty_feed,
            (None, false) => match algorithm {
                Algorithm::Tomo | Algorithm::NdEdge => &empty_feed,
                Algorithm::NdBgpIgp | Algorithm::NdLg => {
                    return Err(DiagnoseError::MissingFeed { algorithm })
                }
            },
        };
        match algorithm {
            Algorithm::Tomo => Ok(tomo_recorded(obs, ip2as, recorder)),
            Algorithm::NdEdge => Ok(nd_edge_recorded(obs, ip2as, weights, recorder)),
            Algorithm::NdBgpIgp => Ok(nd_bgpigp_recorded(obs, ip2as, feed, weights, recorder)),
            Algorithm::NdLg => {
                let lg: &dyn LookingGlass = match (&self.lg, self.config.allow_missing_inputs) {
                    (Some(lg), _) => lg.as_ref(),
                    (None, true) => &NoLg,
                    (None, false) => return Err(DiagnoseError::MissingLookingGlass),
                };
                Ok(nd_lg_recorded(obs, ip2as, feed, lg, weights, recorder))
            }
        }
    }

    /// Runs the configured diagnosis and structures the result as a
    /// [`DiagnosticReport`] under this diagnoser's thresholds
    /// ([`DiagnosticsConfig`]). Same failure modes as
    /// [`diagnose`](Self::diagnose).
    pub fn report(
        &self,
        obs: &Observations,
        ip2as: &dyn IpToAs,
    ) -> Result<DiagnosticReport, DiagnoseError> {
        let diagnosis = self.diagnose(obs, ip2as)?;
        let report = DiagnosticReport::from_diagnosis(&diagnosis, &self.config);
        self.recorder.add(names::REPORT_BUILDS, 1);
        self.recorder
            .observe(names::REPORT_ISSUES, report.issues.len() as u64);
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observation::{Hop, IpToAsFn, LookingGlassFn, ProbePath, SensorMeta, Snapshot};
    use netdiag_topology::{AsId, SensorId};
    use proptest::prelude::*;
    use std::net::Ipv4Addr;

    fn obs() -> Observations {
        let r = Ipv4Addr::new(10, 0, 1, 1);
        let dst = Ipv4Addr::new(10, 2, 0, 200);
        Observations {
            sensors: vec![
                SensorMeta {
                    id: SensorId(0),
                    addr: Ipv4Addr::new(10, 1, 0, 200),
                    as_id: AsId(1),
                },
                SensorMeta {
                    id: SensorId(1),
                    addr: dst,
                    as_id: AsId(2),
                },
            ],
            before: Snapshot {
                paths: vec![ProbePath {
                    src: SensorId(0),
                    dst: SensorId(1),
                    hops: vec![Hop::Addr(r), Hop::Addr(dst)],
                    reached: true,
                }],
            },
            after: Snapshot {
                paths: vec![ProbePath {
                    src: SensorId(0),
                    dst: SensorId(1),
                    hops: vec![Hop::Addr(r)],
                    reached: false,
                }],
            },
        }
    }

    fn ip2as() -> IpToAsFn<impl Fn(Ipv4Addr) -> Option<AsId>> {
        IpToAsFn(|a: Ipv4Addr| Some(AsId(u32::from(a.octets()[1]))))
    }

    #[test]
    fn parses_algorithm_names() {
        assert_eq!("tomo".parse(), Ok(Algorithm::Tomo));
        assert_eq!("nd-edge".parse(), Ok(Algorithm::NdEdge));
        assert_eq!("nd_bgpigp".parse(), Ok(Algorithm::NdBgpIgp));
        assert_eq!("nd-lg".parse(), Ok(Algorithm::NdLg));
        assert_eq!("ND-LG".parse(), Ok(Algorithm::NdLg));
        assert_eq!("Tomo".parse(), Ok(Algorithm::Tomo));
        assert!("nd-???".parse::<Algorithm>().is_err());
    }

    proptest! {
        #[test]
        fn display_round_trips_through_fromstr(i in 0usize..4) {
            let algorithm = Algorithm::ALL[i];
            prop_assert_eq!(algorithm.to_string().parse::<Algorithm>(), Ok(algorithm));
            prop_assert_eq!(
                algorithm.to_string().to_ascii_uppercase().parse::<Algorithm>(),
                Ok(algorithm)
            );
        }
    }

    #[test]
    fn every_variant_runs_leniently_without_optional_inputs() {
        let ip2as = ip2as();
        let o = obs();
        for algorithm in Algorithm::ALL {
            let d = NetDiagnoser::builder()
                .algorithm(algorithm)
                .allow_missing_inputs()
                .build()
                .diagnose(&o, &ip2as)
                .unwrap();
            assert!(!d.is_empty(), "{algorithm:?} finds the only suspect link");
        }
    }

    #[test]
    fn feed_dependent_variants_refuse_to_run_without_a_feed() {
        let ip2as = ip2as();
        let o = obs();
        for algorithm in [Algorithm::NdBgpIgp, Algorithm::NdLg] {
            let err = NetDiagnoser::builder()
                .algorithm(algorithm)
                .build()
                .diagnose(&o, &ip2as)
                .unwrap_err();
            assert_eq!(err, DiagnoseError::MissingFeed { algorithm });
        }
    }

    #[test]
    fn ndlg_refuses_to_run_without_a_looking_glass() {
        let ip2as = ip2as();
        let o = obs();
        let err = NetDiagnoser::builder()
            .algorithm(Algorithm::NdLg)
            .routing_feed(RoutingFeed::default())
            .build()
            .diagnose(&o, &ip2as)
            .unwrap_err();
        assert_eq!(err, DiagnoseError::MissingLookingGlass);
    }

    #[test]
    fn configured_feed_is_used() {
        let ip2as = ip2as();
        let o = obs();
        let d = NetDiagnoser::builder()
            .algorithm(Algorithm::NdBgpIgp)
            .routing_feed(RoutingFeed::default())
            .build()
            .diagnose(&o, &ip2as)
            .unwrap();
        assert!(!d.is_empty());
    }

    #[test]
    fn feed_can_be_shared_or_passed_by_value() {
        let ip2as = ip2as();
        let o = obs();
        let shared = std::sync::Arc::new(RoutingFeed::default());
        let d = NetDiagnoser::builder()
            .algorithm(Algorithm::NdBgpIgp)
            .routing_feed(std::sync::Arc::clone(&shared))
            .build()
            .diagnose(&o, &ip2as)
            .unwrap();
        let d2 = NetDiagnoser::builder()
            .algorithm(Algorithm::NdBgpIgp)
            .routing_feed(RoutingFeed::clone(&shared))
            .build()
            .diagnose(&o, &ip2as)
            .unwrap();
        assert_eq!(d.hypothesis, d2.hypothesis);
    }

    #[test]
    fn default_is_ndedge_with_paper_weights() {
        let nd = NetDiagnoser::default();
        assert_eq!(nd.algorithm(), Algorithm::NdEdge);
        assert_eq!(nd.weights(), Weights { a: 1, b: 1 });
    }

    #[test]
    fn config_travels_whole_and_setters_layer_on_top() {
        let cfg = DiagnosticsConfig {
            algorithm: Algorithm::Tomo,
            max_issues: 3,
            ..Default::default()
        };
        let nd = NetDiagnoser::builder()
            .config(cfg)
            .algorithm(Algorithm::NdEdge)
            .build();
        assert_eq!(nd.algorithm(), Algorithm::NdEdge);
        assert_eq!(nd.config().max_issues, 3);
    }

    #[test]
    fn built_diagnoser_is_send_sync_and_static() {
        fn assert_send_sync_static<T: Send + Sync + 'static>(_: &T) {}
        let nd = NetDiagnoser::builder()
            .algorithm(Algorithm::NdLg)
            .routing_feed(RoutingFeed::default())
            .looking_glass(LookingGlassFn(|from, _| Some(vec![from])))
            .build();
        assert_send_sync_static(&nd);
        // And it actually crosses a thread boundary, diagnosing there.
        let handle = std::thread::spawn(move || {
            let d = nd.diagnose(&obs(), &ip2as()).unwrap();
            d.len()
        });
        assert!(handle.join().unwrap() > 0);
    }

    #[test]
    fn recorder_sees_diagnosis_counters() {
        let (recorder, sink) = RecorderHandle::in_memory();
        let ip2as = ip2as();
        let o = obs();
        let d = NetDiagnoser::builder()
            .recorder(recorder)
            .build()
            .diagnose(&o, &ip2as)
            .unwrap();
        let report = sink.report();
        assert_eq!(report.counter(netdiag_obs::names::DIAG_RUNS), 1);
        assert!(report.counter(netdiag_obs::names::HS_GREEDY_ITERS) >= 1);
        let h = report
            .histogram(netdiag_obs::names::DIAG_HYPOTHESIS_SIZE)
            .expect("hypothesis size observed");
        assert_eq!(h.sum, d.len() as u64);
    }

    #[test]
    fn report_method_applies_config_and_records_counters() {
        let (recorder, sink) = RecorderHandle::in_memory();
        let ip2as = ip2as();
        let o = obs();
        let report = NetDiagnoser::builder()
            .recorder(recorder)
            .build()
            .report(&o, &ip2as)
            .unwrap();
        assert!(!report.issues.is_empty());
        assert_eq!(report.algorithm, Algorithm::NdEdge);
        let run = sink.report();
        assert_eq!(run.counter(netdiag_obs::names::REPORT_BUILDS), 1);
        let h = run
            .histogram(netdiag_obs::names::REPORT_ISSUES)
            .expect("issue count observed");
        assert_eq!(h.sum, report.issues.len() as u64);
    }
}
