//! A one-stop configuration facade over the four algorithms — convenient
//! for downstream users who pick the variant at runtime (the CLI and the
//! experiment harness use the explicit functions).

use crate::algorithms::{nd_bgpigp, nd_edge, nd_lg, tomo};
use crate::diagnosis::Diagnosis;
use crate::hitting_set::Weights;
use crate::observation::{IpToAs, LookingGlass, Observations, RoutingFeed};

/// Which diagnosis algorithm to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Algorithm {
    /// Plain multi-AS Boolean tomography (§2).
    Tomo,
    /// Logical links + reroute sets (§3.1–3.2) — the best choice without
    /// ISP cooperation.
    #[default]
    NdEdge,
    /// ND-edge + AS-X's control plane (§3.3) — requires a routing feed.
    NdBgpIgp,
    /// ND-bgpigp + Looking Glass mapping of unidentified hops (§3.4).
    NdLg,
}

impl std::str::FromStr for Algorithm {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "tomo" => Ok(Algorithm::Tomo),
            "nd-edge" | "nd_edge" => Ok(Algorithm::NdEdge),
            "nd-bgpigp" | "nd_bgpigp" => Ok(Algorithm::NdBgpIgp),
            "nd-lg" | "nd_lg" => Ok(Algorithm::NdLg),
            other => Err(format!("unknown algorithm {other:?}")),
        }
    }
}

/// A configured troubleshooter.
///
/// ```
/// use netdiagnoser::{Algorithm, NetDiagnoser};
/// let nd = NetDiagnoser::new(Algorithm::NdEdge);
/// assert_eq!(nd.algorithm, Algorithm::NdEdge);
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct NetDiagnoser {
    /// The algorithm variant.
    pub algorithm: Algorithm,
    /// Greedy scoring weights (§3.2; the paper's default is `a = b = 1`).
    pub weights: Weights,
}

impl NetDiagnoser {
    /// A troubleshooter with the paper's default weights.
    pub fn new(algorithm: Algorithm) -> Self {
        NetDiagnoser {
            algorithm,
            weights: Weights::default(),
        }
    }

    /// Runs the configured diagnosis.
    ///
    /// `feed` is required by [`Algorithm::NdBgpIgp`] and [`Algorithm::NdLg`]
    /// (an empty default is substituted if absent — equivalent to an ISP
    /// that observed nothing); `lg` is required by [`Algorithm::NdLg`]
    /// (without it, unidentified hops simply stay unmapped).
    pub fn diagnose(
        &self,
        obs: &Observations,
        ip2as: &dyn IpToAs,
        feed: Option<&RoutingFeed>,
        lg: Option<&dyn LookingGlass>,
    ) -> Diagnosis {
        let empty_feed = RoutingFeed::default();
        let feed = feed.unwrap_or(&empty_feed);
        match self.algorithm {
            Algorithm::Tomo => tomo(obs, ip2as),
            Algorithm::NdEdge => nd_edge(obs, ip2as, self.weights),
            Algorithm::NdBgpIgp => nd_bgpigp(obs, ip2as, feed, self.weights),
            Algorithm::NdLg => {
                /// A Looking Glass with no servers at all.
                struct NoLg;
                impl LookingGlass for NoLg {
                    fn as_path(
                        &self,
                        _: netdiag_topology::AsId,
                        _: std::net::Ipv4Addr,
                    ) -> Option<Vec<netdiag_topology::AsId>> {
                        None
                    }
                }
                match lg {
                    Some(lg) => nd_lg(obs, ip2as, feed, lg, self.weights),
                    None => nd_lg(obs, ip2as, feed, &NoLg, self.weights),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observation::{Hop, IpToAsFn, ProbePath, SensorMeta, Snapshot};
    use netdiag_topology::{AsId, SensorId};
    use std::net::Ipv4Addr;

    fn obs() -> Observations {
        let r = Ipv4Addr::new(10, 0, 1, 1);
        let dst = Ipv4Addr::new(10, 2, 0, 200);
        Observations {
            sensors: vec![
                SensorMeta {
                    id: SensorId(0),
                    addr: Ipv4Addr::new(10, 1, 0, 200),
                    as_id: AsId(1),
                },
                SensorMeta {
                    id: SensorId(1),
                    addr: dst,
                    as_id: AsId(2),
                },
            ],
            before: Snapshot {
                paths: vec![ProbePath {
                    src: SensorId(0),
                    dst: SensorId(1),
                    hops: vec![Hop::Addr(r), Hop::Addr(dst)],
                    reached: true,
                }],
            },
            after: Snapshot {
                paths: vec![ProbePath {
                    src: SensorId(0),
                    dst: SensorId(1),
                    hops: vec![Hop::Addr(r)],
                    reached: false,
                }],
            },
        }
    }

    #[test]
    fn parses_algorithm_names() {
        assert_eq!("tomo".parse(), Ok(Algorithm::Tomo));
        assert_eq!("nd-edge".parse(), Ok(Algorithm::NdEdge));
        assert_eq!("nd_bgpigp".parse(), Ok(Algorithm::NdBgpIgp));
        assert_eq!("nd-lg".parse(), Ok(Algorithm::NdLg));
        assert!("nd-???".parse::<Algorithm>().is_err());
    }

    #[test]
    fn every_variant_runs_without_optional_inputs() {
        let ip2as = IpToAsFn(|a: Ipv4Addr| Some(AsId(u32::from(a.octets()[1]))));
        let o = obs();
        for algorithm in [
            Algorithm::Tomo,
            Algorithm::NdEdge,
            Algorithm::NdBgpIgp,
            Algorithm::NdLg,
        ] {
            let d = NetDiagnoser::new(algorithm).diagnose(&o, &ip2as, None, None);
            assert!(!d.is_empty(), "{algorithm:?} finds the only suspect link");
        }
    }

    #[test]
    fn default_is_ndedge_with_paper_weights() {
        let nd = NetDiagnoser::default();
        assert_eq!(nd.algorithm, Algorithm::NdEdge);
        assert_eq!(nd.weights, Weights { a: 1, b: 1 });
    }
}
