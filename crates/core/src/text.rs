//! Plain-text serialization of observations, routing feeds and Looking
//! Glass answers — the interchange format for driving the diagnoser with
//! recorded (or simulated) measurement data.
//!
//! The formats are line-oriented and diff-friendly:
//!
//! **Sensors** (`sensors.txt`): one `sensor <id> <addr> <as>` per line.
//!
//! **Snapshots** (`before.txt` / `after.txt`): paths separated by blank
//! lines; each path starts with `path <src-id> <dst-id> reached|failed`,
//! followed by one hop per line — an IPv4 address or `*` for an
//! unidentified hop.
//!
//! **Routing feed** (`feed.txt`): lines `withdraw <neighbor-addr>
//! <prefix>` and `igp-down <addr-a> <addr-b>`.
//!
//! **Looking Glass dump** (`lg.txt`): lines `aspath <from-as> <dst-addr>
//! <as> <as> ...` recording the answer each AS's Looking Glass gave for a
//! destination.
//!
//! **IP-to-AS map** (`ip2as.txt`): one `ip2as <addr> <as>` per line.
//!
//! Lines starting with `#` are comments everywhere.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::net::Ipv4Addr;

use netdiag_topology::{AsId, Prefix, SensorId};

use crate::observation::{
    Hop, IgpLinkDownObs, IpToAs, LookingGlass, Observations, ProbePath, RoutingFeed, SensorMeta,
    Snapshot, WithdrawalObs,
};

/// A parse failure with its line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

/// Iterates non-comment lines with their 1-based numbers.
fn lines(text: &str) -> impl Iterator<Item = (usize, &str)> {
    text.lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.starts_with('#'))
}

/// Serializes the sensor directory.
pub fn write_sensors(sensors: &[SensorMeta]) -> String {
    let mut out = String::from("# sensor <id> <addr> <as>\n");
    for s in sensors {
        let _ = writeln!(out, "sensor {} {} {}", s.id.0, s.addr, s.as_id.0);
    }
    out
}

/// Parses a sensor directory.
pub fn parse_sensors(text: &str) -> Result<Vec<SensorMeta>, ParseError> {
    let mut sensors = Vec::new();
    for (n, line) in lines(text) {
        if line.is_empty() {
            continue;
        }
        let parts: Vec<&str> = line.split_whitespace().collect();
        match parts.as_slice() {
            ["sensor", id, addr, as_id] => sensors.push(SensorMeta {
                id: SensorId(id.parse().map_err(|_| err(n, "bad sensor id"))?),
                addr: addr.parse().map_err(|_| err(n, "bad address"))?,
                as_id: AsId(as_id.parse().map_err(|_| err(n, "bad AS id"))?),
            }),
            _ => return Err(err(n, format!("unrecognized sensor line: {line:?}"))),
        }
    }
    Ok(sensors)
}

/// Serializes a snapshot.
pub fn write_snapshot(snapshot: &Snapshot) -> String {
    let mut out = String::from("# path <src> <dst> reached|failed, then one hop per line\n");
    for p in &snapshot.paths {
        let _ = writeln!(
            out,
            "path {} {} {}",
            p.src.0,
            p.dst.0,
            if p.reached { "reached" } else { "failed" }
        );
        for hop in &p.hops {
            match hop {
                Hop::Addr(a) => {
                    let _ = writeln!(out, "{a}");
                }
                Hop::Star => {
                    let _ = writeln!(out, "*");
                }
            }
        }
        out.push('\n');
    }
    out
}

/// Parses a snapshot.
pub fn parse_snapshot(text: &str) -> Result<Snapshot, ParseError> {
    let mut paths: Vec<ProbePath> = Vec::new();
    let mut current: Option<ProbePath> = None;
    for (n, line) in lines(text) {
        if line.is_empty() {
            if let Some(p) = current.take() {
                paths.push(p);
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("path ") {
            if let Some(p) = current.take() {
                paths.push(p);
            }
            let parts: Vec<&str> = rest.split_whitespace().collect();
            let [src, dst, status] = parts.as_slice() else {
                return Err(err(n, "expected: path <src> <dst> reached|failed"));
            };
            let reached = match *status {
                "reached" => true,
                "failed" => false,
                other => return Err(err(n, format!("bad status {other:?}"))),
            };
            current = Some(ProbePath {
                src: SensorId(src.parse().map_err(|_| err(n, "bad src id"))?),
                dst: SensorId(dst.parse().map_err(|_| err(n, "bad dst id"))?),
                hops: Vec::new(),
                reached,
            });
        } else {
            let p = current
                .as_mut()
                .ok_or_else(|| err(n, "hop before any path header"))?;
            if line == "*" {
                p.hops.push(Hop::Star);
            } else {
                let addr: Ipv4Addr = line
                    .parse()
                    .map_err(|_| err(n, format!("bad hop {line:?}")))?;
                p.hops.push(Hop::Addr(addr));
            }
        }
    }
    if let Some(p) = current.take() {
        paths.push(p);
    }
    Ok(Snapshot { paths })
}

/// Serializes a routing feed.
pub fn write_feed(feed: &RoutingFeed) -> String {
    let mut out =
        String::from("# withdraw <neighbor-addr> <prefix> | igp-down <addr-a> <addr-b>\n");
    for w in &feed.withdrawals {
        let _ = writeln!(out, "withdraw {} {}", w.from_addr, w.prefix);
    }
    for e in &feed.igp_link_down {
        let _ = writeln!(out, "igp-down {} {}", e.addr_a, e.addr_b);
    }
    out
}

/// Parses a routing feed.
pub fn parse_feed(text: &str) -> Result<RoutingFeed, ParseError> {
    let mut feed = RoutingFeed::default();
    for (n, line) in lines(text) {
        if line.is_empty() {
            continue;
        }
        let parts: Vec<&str> = line.split_whitespace().collect();
        match parts.as_slice() {
            ["withdraw", addr, prefix] => feed.withdrawals.push(WithdrawalObs {
                from_addr: addr.parse().map_err(|_| err(n, "bad address"))?,
                prefix: prefix
                    .parse::<Prefix>()
                    .map_err(|e| err(n, e.to_string()))?,
            }),
            ["igp-down", a, b] => feed.igp_link_down.push(IgpLinkDownObs {
                addr_a: a.parse().map_err(|_| err(n, "bad address"))?,
                addr_b: b.parse().map_err(|_| err(n, "bad address"))?,
            }),
            _ => return Err(err(n, format!("unrecognized feed line: {line:?}"))),
        }
    }
    Ok(feed)
}

/// A Looking Glass backed by a recorded dump of AS-path answers.
#[derive(Clone, Debug, Default)]
pub struct RecordedLookingGlass {
    answers: BTreeMap<(AsId, Ipv4Addr), Vec<AsId>>,
}

impl RecordedLookingGlass {
    /// An empty recording.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one answer.
    pub fn record(&mut self, from: AsId, dst: Ipv4Addr, path: Vec<AsId>) {
        self.answers.insert((from, dst), path);
    }

    /// Number of recorded answers.
    pub fn len(&self) -> usize {
        self.answers.len()
    }

    /// True when nothing is recorded.
    pub fn is_empty(&self) -> bool {
        self.answers.is_empty()
    }

    /// Serializes the dump.
    pub fn write(&self) -> String {
        let mut out = String::from("# aspath <from-as> <dst-addr> <as>...\n");
        for ((from, dst), path) in &self.answers {
            let _ = write!(out, "aspath {} {dst}", from.0);
            for a in path {
                let _ = write!(out, " {}", a.0);
            }
            out.push('\n');
        }
        out
    }

    /// Parses a dump.
    pub fn parse(text: &str) -> Result<Self, ParseError> {
        let mut lg = RecordedLookingGlass::new();
        for (n, line) in lines(text) {
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            match parts.next() {
                Some("aspath") => {
                    let from = parts
                        .next()
                        .and_then(|v| v.parse().ok())
                        .map(AsId)
                        .ok_or_else(|| err(n, "bad from-as"))?;
                    let dst: Ipv4Addr = parts
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| err(n, "bad dst addr"))?;
                    let path: Result<Vec<AsId>, _> = parts
                        .map(|v| v.parse().map(AsId).map_err(|_| err(n, "bad AS id")))
                        .collect();
                    lg.record(from, dst, path?);
                }
                _ => return Err(err(n, format!("unrecognized lg line: {line:?}"))),
            }
        }
        Ok(lg)
    }
}

impl LookingGlass for RecordedLookingGlass {
    fn as_path(&self, from_as: AsId, dst: Ipv4Addr) -> Option<Vec<AsId>> {
        self.answers.get(&(from_as, dst)).cloned()
    }
}

/// An IP-to-AS mapping service backed by a recorded dump.
#[derive(Clone, Debug, Default)]
pub struct RecordedIpToAs {
    map: BTreeMap<Ipv4Addr, AsId>,
}

impl RecordedIpToAs {
    /// An empty recording.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one mapping.
    pub fn record(&mut self, addr: Ipv4Addr, as_id: AsId) {
        self.map.insert(addr, as_id);
    }

    /// Number of recorded mappings.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is recorded.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Serializes the dump.
    pub fn write(&self) -> String {
        let mut out = String::from("# ip2as <addr> <as>\n");
        for (addr, as_id) in &self.map {
            let _ = writeln!(out, "ip2as {addr} {}", as_id.0);
        }
        out
    }

    /// Parses a dump.
    pub fn parse(text: &str) -> Result<Self, ParseError> {
        let mut ip2as = RecordedIpToAs::new();
        for (n, line) in lines(text) {
            if line.is_empty() {
                continue;
            }
            let parts: Vec<&str> = line.split_whitespace().collect();
            match parts.as_slice() {
                ["ip2as", addr, asn] => ip2as.record(
                    addr.parse().map_err(|_| err(n, "bad address"))?,
                    asn.parse().map(AsId).map_err(|_| err(n, "bad AS id"))?,
                ),
                _ => return Err(err(n, format!("unrecognized ip2as line: {line:?}"))),
            }
        }
        Ok(ip2as)
    }
}

impl IpToAs for RecordedIpToAs {
    fn as_of(&self, addr: Ipv4Addr) -> Option<AsId> {
        self.map.get(&addr).copied()
    }
}

/// Serializes complete observations into (sensors, before, after) texts.
pub fn write_observations(obs: &Observations) -> (String, String, String) {
    (
        write_sensors(&obs.sensors),
        write_snapshot(&obs.before),
        write_snapshot(&obs.after),
    )
}

/// Parses complete observations from the three texts.
pub fn parse_observations(
    sensors: &str,
    before: &str,
    after: &str,
) -> Result<Observations, ParseError> {
    Ok(Observations {
        sensors: parse_sensors(sensors)?,
        before: parse_snapshot(before)?,
        after: parse_snapshot(after)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_obs() -> Observations {
        let a = |x: u8| Ipv4Addr::new(10, x, 0, 1);
        Observations {
            sensors: vec![
                SensorMeta {
                    id: SensorId(0),
                    addr: a(1),
                    as_id: AsId(1),
                },
                SensorMeta {
                    id: SensorId(1),
                    addr: a(2),
                    as_id: AsId(2),
                },
            ],
            before: Snapshot {
                paths: vec![ProbePath {
                    src: SensorId(0),
                    dst: SensorId(1),
                    hops: vec![Hop::Addr(a(3)), Hop::Star, Hop::Addr(a(2))],
                    reached: true,
                }],
            },
            after: Snapshot {
                paths: vec![ProbePath {
                    src: SensorId(0),
                    dst: SensorId(1),
                    hops: vec![Hop::Addr(a(3))],
                    reached: false,
                }],
            },
        }
    }

    #[test]
    fn observations_roundtrip() {
        let obs = sample_obs();
        let (s, b, a) = write_observations(&obs);
        let parsed = parse_observations(&s, &b, &a).unwrap();
        assert_eq!(parsed.sensors, obs.sensors);
        assert_eq!(parsed.before.paths.len(), 1);
        assert_eq!(parsed.before.paths[0].hops, obs.before.paths[0].hops);
        assert!(!parsed.after.paths[0].reached);
    }

    #[test]
    fn feed_roundtrip() {
        let feed = RoutingFeed {
            withdrawals: vec![WithdrawalObs {
                from_addr: Ipv4Addr::new(172, 16, 0, 1),
                prefix: Prefix::new(Ipv4Addr::new(10, 5, 0, 0), 16),
            }],
            igp_link_down: vec![IgpLinkDownObs {
                addr_a: Ipv4Addr::new(172, 16, 0, 5),
                addr_b: Ipv4Addr::new(172, 16, 0, 6),
            }],
        };
        let text = write_feed(&feed);
        let parsed = parse_feed(&text).unwrap();
        assert_eq!(parsed.withdrawals, feed.withdrawals);
        assert_eq!(parsed.igp_link_down, feed.igp_link_down);
    }

    #[test]
    fn lg_roundtrip_and_lookup() {
        let mut lg = RecordedLookingGlass::new();
        lg.record(
            AsId(1),
            Ipv4Addr::new(10, 2, 0, 1),
            vec![AsId(1), AsId(5), AsId(2)],
        );
        let parsed = RecordedLookingGlass::parse(&lg.write()).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(
            parsed.as_path(AsId(1), Ipv4Addr::new(10, 2, 0, 1)),
            Some(vec![AsId(1), AsId(5), AsId(2)])
        );
        assert_eq!(parsed.as_path(AsId(9), Ipv4Addr::new(10, 2, 0, 1)), None);
    }

    #[test]
    fn ip2as_roundtrip_and_lookup() {
        let mut map = RecordedIpToAs::new();
        map.record(Ipv4Addr::new(10, 1, 0, 1), AsId(1));
        map.record(Ipv4Addr::new(10, 2, 0, 1), AsId(2));
        let parsed = RecordedIpToAs::parse(&map.write()).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed.as_of(Ipv4Addr::new(10, 2, 0, 1)), Some(AsId(2)));
        assert_eq!(parsed.as_of(Ipv4Addr::new(10, 9, 0, 1)), None);
        assert_eq!(RecordedIpToAs::parse("ip2as nope 1").unwrap_err().line, 1);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let e = parse_sensors("sensor x y z").unwrap_err();
        assert_eq!(e.line, 1);
        let e = parse_snapshot("path 0 1 reached\nnot-an-ip").unwrap_err();
        assert_eq!(e.line, 2);
        let e = parse_snapshot("10.0.0.1").unwrap_err();
        assert!(e.message.contains("before any path"));
        let e = parse_feed("withdraw 1.2.3.4 not-a-prefix").unwrap_err();
        assert_eq!(e.line, 1);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# hello\n\nsensor 0 10.1.0.1 1\n# bye\n";
        assert_eq!(parse_sensors(text).unwrap().len(), 1);
    }

    #[test]
    fn multiple_paths_parse() {
        let text = "path 0 1 reached\n10.0.0.1\n\npath 1 0 failed\n*\n";
        let snap = parse_snapshot(text).unwrap();
        assert_eq!(snap.paths.len(), 2);
        assert!(snap.paths[0].reached);
        assert!(!snap.paths[1].reached);
        assert_eq!(snap.paths[1].hops, vec![Hop::Star]);
    }
}
