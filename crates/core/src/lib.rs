//! **NetDiagnoser** — troubleshooting network unreachabilities from
//! end-to-end probes and routing data.
//!
//! A from-scratch implementation of the diagnosis algorithms of Dhamdhere,
//! Teixeira, Dovrolis and Diot, *"NetDiagnoser: Troubleshooting network
//! unreachabilities using end-to-end probes and routing data"*, CoNEXT
//! 2007.
//!
//! The troubleshooter observes a full mesh of traceroutes between sensors
//! before (`T-`) and after (`T+`) a failure event and infers the smallest
//! set of links whose failure explains the broken paths:
//!
//! * [`tomo`] — the multi-source multi-destination Boolean tomography
//!   baseline (greedy minimum hitting set, Algorithm 1);
//! * [`nd_edge`] — adds *logical links* (per-neighbor splitting of
//!   inter-domain links, catching BGP export misconfigurations) and
//!   *reroute sets* (information from paths that changed but still work);
//! * [`nd_bgpigp`] — adds AS-X's control plane: IGP link-down events force
//!   links into the hypothesis, BGP withdrawals exonerate upstream links;
//! * [`nd_lg`] — handles traceroute-blocking ASes by mapping unidentified
//!   hops to candidate ASes with Looking Glass queries and clustering
//!   unidentified links that may be the same link.
//!
//! The [`NetDiagnoser`] builder facade wraps all four — pick the variant
//! at runtime, attach the routing feed, Looking Glass and an optional
//! [`RecorderHandle`] once, then call
//! [`diagnose`](NetDiagnoser::diagnose) per incident. Algorithms refuse to
//! run without the inputs they depend on ([`DiagnoseError`]).
//!
//! The crate is simulator-agnostic: inputs are plain observations
//! ([`Observations`], [`RoutingFeed`]) plus two oracles ([`IpToAs`],
//! [`LookingGlass`]) that a deployment would implement with an IP-to-AS
//! mapping service and real Looking Glass servers. The companion
//! `netdiag-netsim` crate provides both from simulation ground truth.
//!
//! Also included: [`scfs`] (Duffield's single-source tree baseline),
//! an exact hitting-set solver for ablations
//! ([`HittingSetInstance::exact`]), and the paper's evaluation metrics
//! ([`metrics`]).
//!
//! # Example
//!
//! ```
//! use std::net::Ipv4Addr;
//! use netdiag_topology::{AsId, SensorId};
//! use netdiagnoser::{
//!     tomo, Hop, IpToAsFn, Observations, ProbePath, SensorMeta, Snapshot,
//! };
//!
//! // Two sensors; the path s0 -> s1 crosses one router and breaks.
//! let r = Ipv4Addr::new(10, 0, 1, 1);
//! let (a0, a1) = (Ipv4Addr::new(10, 1, 0, 200), Ipv4Addr::new(10, 2, 0, 200));
//! let sensors = vec![
//!     SensorMeta { id: SensorId(0), addr: a0, as_id: AsId(1) },
//!     SensorMeta { id: SensorId(1), addr: a1, as_id: AsId(2) },
//! ];
//! let before = Snapshot { paths: vec![ProbePath {
//!     src: SensorId(0), dst: SensorId(1),
//!     hops: vec![Hop::Addr(r), Hop::Addr(a1)], reached: true,
//! }] };
//! let after = Snapshot { paths: vec![ProbePath {
//!     src: SensorId(0), dst: SensorId(1),
//!     hops: vec![Hop::Addr(r)], reached: false,
//! }] };
//! let obs = Observations { sensors, before, after };
//! let ip2as = IpToAsFn(|a: Ipv4Addr| Some(AsId(u32::from(a.octets()[1]))));
//! let diagnosis = tomo(&obs, &ip2as);
//! assert_eq!(diagnosis.len(), 1); // the single probed link is suspect
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod algorithms;
mod bitset;
pub mod config;
pub mod detector;
mod diagnosis;
mod facade;
mod graph;
mod hitting_set;
pub mod metrics;
mod observation;
mod problem;
pub mod ranking;
pub mod report;
mod scfs;
pub mod text;

pub use algorithms::{
    nd_bgpigp, nd_bgpigp_recorded, nd_edge, nd_edge_recorded, nd_lg, nd_lg_recorded, tomo,
    tomo_recorded,
};
pub use bitset::EdgeBitSet;
pub use config::DiagnosticsConfig;
pub use detector::{Alarm, PersistenceFilter};
pub use diagnosis::Diagnosis;
pub use facade::{Algorithm, DiagnoseError, NetDiagnoser, NetDiagnoserBuilder};
pub use graph::{
    DiagGraph, EdgeData, EdgeId, Epoch, HopNode, LogicalPart, NodeData, NodeId, PathRef, PhysId,
};
pub use hitting_set::{GreedyResult, HittingSetInstance, Weights};
pub use observation::{
    Hop, IgpLinkDownObs, IpToAs, IpToAsFn, LookingGlass, LookingGlassFn, Observations, ProbePath,
    RoutingFeed, SensorMeta, Snapshot, WithdrawalObs,
};
pub use problem::{BuildOptions, PathSet, Problem};
pub use report::{
    DiagnosticReport, Issue, IssueCategory, IssueDetail, ReportCounters, Severity,
    REPORT_SCHEMA_VERSION,
};
pub use scfs::scfs;

// Re-exported so downstream users can attach a recorder without naming the
// instrumentation crate themselves.
pub use netdiag_obs::{InMemoryRecorder, NoopRecorder, Recorder, RecorderHandle, RunReport};
