//! Input types for the diagnoser: what the troubleshooter at AS-X actually
//! sees. Everything here is observable in a real deployment — addresses,
//! stars, reachability, routing messages — never simulator ground truth.

use std::net::Ipv4Addr;

use netdiag_topology::{AsId, Prefix, SensorId};

/// One observed traceroute hop.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Hop {
    /// A router answered with this address.
    Addr(Ipv4Addr),
    /// No answer (the hop's AS blocks traceroute) — an *unidentified hop*.
    Star,
}

/// A measured path between two sensors at one point in time.
#[derive(Clone, Debug)]
pub struct ProbePath {
    /// Probing sensor.
    pub src: SensorId,
    /// Target sensor.
    pub dst: SensorId,
    /// Observed hops, source first. When `reached`, the last entry is the
    /// destination host address.
    pub hops: Vec<Hop>,
    /// Did the probe reach the destination?
    pub reached: bool,
}

/// A full-mesh measurement snapshot at one time instant.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// All measured paths (one per ordered sensor pair).
    pub paths: Vec<ProbePath>,
}

impl Snapshot {
    /// The path between an ordered pair, if measured.
    pub fn between(&self, src: SensorId, dst: SensorId) -> Option<&ProbePath> {
        self.paths.iter().find(|p| p.src == src && p.dst == dst)
    }

    /// Number of failed (unreached) paths.
    pub fn failed_count(&self) -> usize {
        self.paths.iter().filter(|p| !p.reached).count()
    }
}

/// What the troubleshooter knows about a sensor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SensorMeta {
    /// Identifier.
    pub id: SensorId,
    /// The sensor's host address.
    pub addr: Ipv4Addr,
    /// The AS hosting the sensor (known: the troubleshooter deployed it).
    pub as_id: AsId,
}

/// The end-to-end probing inputs: the mesh before (`T-`) and after (`T+`)
/// the failure event.
#[derive(Clone, Debug)]
pub struct Observations {
    /// Sensor directory.
    pub sensors: Vec<SensorMeta>,
    /// Snapshot taken before the failure (all paths healthy).
    pub before: Snapshot,
    /// Snapshot taken after the failure.
    pub after: Snapshot,
}

impl Observations {
    /// Metadata for one sensor.
    ///
    /// # Panics
    ///
    /// Panics if the sensor is unknown.
    pub fn sensor(&self, id: SensorId) -> &SensorMeta {
        self.sensors
            .iter()
            .find(|s| s.id == id)
            .expect("sensor ids in observations come from the sensor table")
    }
}

/// A BGP withdrawal observed at a border router of AS-X.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WithdrawalObs {
    /// Interface address of the external neighbor that sent the withdrawal
    /// (its address on the shared inter-domain link — the same address the
    /// neighbor answers traceroutes with on paths through AS-X).
    pub from_addr: Ipv4Addr,
    /// The withdrawn prefix.
    pub prefix: Prefix,
}

/// An IGP "link down" notification for a link inside AS-X.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IgpLinkDownObs {
    /// One interface address of the failed link.
    pub addr_a: Ipv4Addr,
    /// The other interface address.
    pub addr_b: Ipv4Addr,
}

/// Control-plane feed from AS-X (consumed by ND-bgpigp and ND-LG).
#[derive(Clone, Debug, Default)]
pub struct RoutingFeed {
    /// BGP withdrawals received from external neighbors after the event.
    pub withdrawals: Vec<WithdrawalObs>,
    /// IGP link-down events inside AS-X.
    pub igp_link_down: Vec<IgpLinkDownObs>,
}

/// IP-to-AS mapping service (the paper assumes an accurate one, citing
/// Mao et al.; the evaluation implements it from ground truth).
pub trait IpToAs {
    /// The AS owning `addr`, if known.
    fn as_of(&self, addr: Ipv4Addr) -> Option<AsId>;
}

/// Looking Glass query service: AS paths as seen from a given AS.
pub trait LookingGlass {
    /// The AS path from `from_as` toward `dst` (including `from_as` itself
    /// at the front), or `None` when that AS provides no Looking Glass or
    /// has no route.
    fn as_path(&self, from_as: AsId, dst: Ipv4Addr) -> Option<Vec<AsId>>;
}

/// A trivial [`IpToAs`] backed by a closure (handy for tests).
pub struct IpToAsFn<F: Fn(Ipv4Addr) -> Option<AsId>>(pub F);

impl<F: Fn(Ipv4Addr) -> Option<AsId>> IpToAs for IpToAsFn<F> {
    fn as_of(&self, addr: Ipv4Addr) -> Option<AsId> {
        (self.0)(addr)
    }
}

/// A trivial [`LookingGlass`] backed by a closure (handy for tests).
pub struct LookingGlassFn<F: Fn(AsId, Ipv4Addr) -> Option<Vec<AsId>>>(pub F);

impl<F: Fn(AsId, Ipv4Addr) -> Option<Vec<AsId>>> LookingGlass for LookingGlassFn<F> {
    fn as_path(&self, from_as: AsId, dst: Ipv4Addr) -> Option<Vec<AsId>> {
        (self.0)(from_as, dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_lookup_and_counts() {
        let snap = Snapshot {
            paths: vec![
                ProbePath {
                    src: SensorId(0),
                    dst: SensorId(1),
                    hops: vec![Hop::Addr(Ipv4Addr::new(10, 0, 0, 1))],
                    reached: true,
                },
                ProbePath {
                    src: SensorId(1),
                    dst: SensorId(0),
                    hops: vec![Hop::Star],
                    reached: false,
                },
            ],
        };
        assert!(snap.between(SensorId(0), SensorId(1)).unwrap().reached);
        assert!(snap.between(SensorId(0), SensorId(2)).is_none());
        assert_eq!(snap.failed_count(), 1);
    }

    #[test]
    fn closure_adapters() {
        let ip2as = IpToAsFn(|addr: Ipv4Addr| {
            (addr.octets()[0] == 10).then_some(AsId(u32::from(addr.octets()[1])))
        });
        assert_eq!(ip2as.as_of(Ipv4Addr::new(10, 3, 0, 1)), Some(AsId(3)));
        assert_eq!(ip2as.as_of(Ipv4Addr::new(172, 16, 0, 1)), None);

        let lg = LookingGlassFn(|from, _| Some(vec![from, AsId(9)]));
        assert_eq!(
            lg.as_path(AsId(1), Ipv4Addr::new(10, 9, 0, 1)),
            Some(vec![AsId(1), AsId(9)])
        );
    }
}
