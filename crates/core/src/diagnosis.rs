//! The output of a diagnosis run.

use std::collections::BTreeSet;

use netdiag_topology::AsId;

use crate::graph::{DiagGraph, EdgeId, HopNode};
use crate::hitting_set::GreedyResult;
use crate::problem::Problem;

/// Result of running one of the diagnosis algorithms.
#[derive(Clone, Debug)]
pub struct Diagnosis {
    /// The constructed problem (graph, sets, constraints).
    pub problem: Problem,
    /// Raw greedy output (selection order, unexplained sets).
    pub greedy: GreedyResult,
    /// The full hypothesis set: IGP-forced edges first, then the greedy
    /// selection.
    pub hypothesis: Vec<EdgeId>,
    /// Count of failure sets the greedy solver left unexplained, cached at
    /// construction so hot report/scoring paths never re-touch the set.
    unexplained: usize,
}

impl Diagnosis {
    /// Assembles a diagnosis from a solved problem.
    pub fn new(problem: Problem, greedy: GreedyResult) -> Self {
        let mut hypothesis = problem.forced.clone();
        hypothesis.extend(greedy.hypothesis.iter().copied());
        let unexplained = greedy.unexplained_failures.len();
        Diagnosis {
            problem,
            greedy,
            hypothesis,
            unexplained,
        }
    }

    /// The inferred graph.
    pub fn graph(&self) -> &DiagGraph {
        &self.problem.graph
    }

    /// The hypothesis as observed endpoint pairs.
    pub fn hypothesis_endpoints(&self) -> Vec<(HopNode, HopNode)> {
        self.hypothesis
            .iter()
            .map(|&e| self.problem.graph.endpoints(e))
            .collect()
    }

    /// AS-level hypothesis: the union of the AS attributions of every
    /// hypothesis edge (endpoint tags; for LG-mapped unidentified hops
    /// these are the candidate-AS sets).
    pub fn as_hypothesis(&self) -> BTreeSet<AsId> {
        self.hypothesis
            .iter()
            .flat_map(|&e| self.problem.graph.edge_as_set(e))
            .collect()
    }

    /// Number of failure sets the algorithm could not explain (cached at
    /// construction).
    pub fn unexplained_failures(&self) -> usize {
        self.unexplained
    }

    /// Size of the hypothesis set.
    pub fn len(&self) -> usize {
        self.hypothesis.len()
    }

    /// True when the hypothesis is empty.
    pub fn is_empty(&self) -> bool {
        self.hypothesis.is_empty()
    }
}
