//! Robust failure detection (§6 of the paper): transient events such as
//! link flaps must not trigger troubleshooting. The troubleshooter "raises
//! an alarm only if the failure manifests itself in several successive
//! measurements".

use std::collections::{BTreeSet, VecDeque};

use netdiag_topology::SensorId;

use crate::observation::Snapshot;

/// Sliding-window persistence filter over measurement rounds.
///
/// Feed each periodic full-mesh [`Snapshot`] to [`PersistenceFilter::observe`];
/// an [`Alarm`] is raised only for sensor pairs unreachable in `k`
/// consecutive rounds — the paper's §6 robustness recipe.
///
/// ```
/// use netdiagnoser::{PersistenceFilter, Snapshot};
///
/// let mut filter = PersistenceFilter::new(2);
/// let healthy = Snapshot::default();
/// assert!(filter.observe(&healthy).is_none());
/// assert!(filter.observe(&healthy).is_none()); // nothing failing
/// ```
#[derive(Clone, Debug)]
pub struct PersistenceFilter {
    k: usize,
    history: VecDeque<BTreeSet<(SensorId, SensorId)>>,
}

/// The pairs whose unreachability persisted through the whole window.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Alarm {
    /// Sensor pairs broken in every one of the last `k` rounds.
    pub persistent_pairs: BTreeSet<(SensorId, SensorId)>,
}

impl PersistenceFilter {
    /// A filter requiring `k` consecutive broken measurements
    /// (`k >= 1`; `k = 1` alarms immediately, the naive behavior).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "window must hold at least one round");
        PersistenceFilter {
            k,
            history: VecDeque::new(),
        }
    }

    /// Records one measurement round. Returns an alarm when some pair has
    /// been unreachable in each of the last `k` rounds (including this
    /// one).
    pub fn observe(&mut self, snapshot: &Snapshot) -> Option<Alarm> {
        let failed: BTreeSet<(SensorId, SensorId)> = snapshot
            .paths
            .iter()
            .filter(|p| !p.reached)
            .map(|p| (p.src, p.dst))
            .collect();
        self.history.push_back(failed);
        if self.history.len() > self.k {
            self.history.pop_front();
        }
        if self.history.len() < self.k {
            return None;
        }
        let mut persistent = self.history[0].clone();
        for round in self.history.iter().skip(1) {
            persistent = persistent.intersection(round).copied().collect();
        }
        (!persistent.is_empty()).then_some(Alarm {
            persistent_pairs: persistent,
        })
    }

    /// Clears the measurement history (e.g. after a diagnosis round).
    pub fn reset(&mut self) {
        self.history.clear();
    }

    /// The configured window length.
    pub fn window(&self) -> usize {
        self.k
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observation::ProbePath;

    fn snap(broken: &[(u32, u32)]) -> Snapshot {
        // Two sensors, both directions; mark the listed pairs broken.
        let mut paths = Vec::new();
        for (s, d) in [(0u32, 1u32), (1, 0)] {
            paths.push(ProbePath {
                src: SensorId(s),
                dst: SensorId(d),
                hops: vec![],
                reached: !broken.contains(&(s, d)),
            });
        }
        Snapshot { paths }
    }

    #[test]
    fn transient_flap_is_suppressed() {
        let mut f = PersistenceFilter::new(3);
        assert_eq!(f.observe(&snap(&[(0, 1)])), None); // blip
        assert_eq!(f.observe(&snap(&[])), None); // recovered
        assert_eq!(f.observe(&snap(&[(0, 1)])), None); // blip again
        assert_eq!(f.observe(&snap(&[])), None);
        assert_eq!(f.observe(&snap(&[])), None);
    }

    #[test]
    fn persistent_failure_alarms_after_k_rounds() {
        let mut f = PersistenceFilter::new(3);
        assert_eq!(f.observe(&snap(&[(0, 1)])), None);
        assert_eq!(f.observe(&snap(&[(0, 1)])), None);
        let alarm = f.observe(&snap(&[(0, 1)])).expect("third round alarms");
        assert_eq!(
            alarm.persistent_pairs,
            BTreeSet::from([(SensorId(0), SensorId(1))])
        );
        // Still alarming while it persists.
        assert!(f.observe(&snap(&[(0, 1)])).is_some());
    }

    #[test]
    fn only_the_persistent_pair_is_reported() {
        let mut f = PersistenceFilter::new(2);
        f.observe(&snap(&[(0, 1), (1, 0)]));
        let alarm = f.observe(&snap(&[(0, 1)])).expect("pair 0->1 persists");
        assert_eq!(
            alarm.persistent_pairs,
            BTreeSet::from([(SensorId(0), SensorId(1))])
        );
    }

    #[test]
    fn k_equals_one_is_naive() {
        let mut f = PersistenceFilter::new(1);
        assert!(f.observe(&snap(&[(1, 0)])).is_some());
        assert!(f.observe(&snap(&[])).is_none());
    }

    #[test]
    fn reset_clears_history() {
        let mut f = PersistenceFilter::new(2);
        f.observe(&snap(&[(0, 1)]));
        f.reset();
        assert_eq!(f.observe(&snap(&[(0, 1)])), None, "window restarts");
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_window_rejected() {
        PersistenceFilter::new(0);
    }
}
