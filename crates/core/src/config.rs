//! [`DiagnosticsConfig`]: every knob of a diagnosis run in one value.
//!
//! Before this type, the algorithm choice, greedy weights and lenient-input
//! flag lived as separate builder setters, and reporting thresholds did not
//! exist at all — each CLI and the experiment runner carried its own ad-hoc
//! subset. The config travels whole: the [`NetDiagnoser`] builder accepts
//! it via [`config`](crate::NetDiagnoserBuilder::config), the experiment
//! runner embeds it in its `RunConfig`, and the serve daemon forwards
//! per-request overrides into it.
//!
//! [`NetDiagnoser`]: crate::NetDiagnoser

use crate::facade::Algorithm;
use crate::hitting_set::Weights;

/// All tunables of a diagnosis run: which algorithm, how the greedy
/// hitting set scores candidates, how missing inputs are treated, and the
/// reporting thresholds applied when the result is turned into a
/// [`DiagnosticReport`](crate::DiagnosticReport).
///
/// The default value reproduces the paper's setup (ND-edge, `a = b = 1`,
/// strict inputs) with reporting thresholds disabled, so a default-config
/// report renders byte-identically to the historical flat-text report.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DiagnosticsConfig {
    /// The diagnosis algorithm variant to run.
    pub algorithm: Algorithm,
    /// Greedy scoring weights (§3.2; paper default `a = b = 1`).
    pub weights: Weights,
    /// Run feed-dependent algorithms even without a feed (or, for ND-LG,
    /// without a Looking Glass), substituting an ISP that observed
    /// nothing. Default `false`: missing inputs are an error.
    pub allow_missing_inputs: bool,
    /// Minimum per-issue confidence for a finding to appear in the
    /// report. `0.0` (the default) reports everything. The
    /// unexplained-failure warning is never suppressed — low confidence
    /// in the hypothesis is exactly when the operator must see it.
    pub min_confidence: f64,
    /// Upper bound on reported issues, keeping the strongest by severity
    /// then confidence. `0` (the default) means unlimited.
    pub max_issues: usize,
    /// Escalate the unexplained-failure warning to
    /// [`Severity::Error`](crate::Severity::Error) once at least this
    /// many failed paths stay unexplained. `0` (the default) never
    /// escalates.
    pub unexplained_escalation: usize,
}

impl Default for DiagnosticsConfig {
    fn default() -> Self {
        DiagnosticsConfig {
            algorithm: Algorithm::default(),
            weights: Weights::default(),
            allow_missing_inputs: false,
            min_confidence: 0.0,
            max_issues: 0,
            unexplained_escalation: 0,
        }
    }
}

impl DiagnosticsConfig {
    /// A config for `algorithm` with every other knob at its default.
    pub fn for_algorithm(algorithm: Algorithm) -> Self {
        DiagnosticsConfig {
            algorithm,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_the_paper_setup() {
        let cfg = DiagnosticsConfig::default();
        assert_eq!(cfg.algorithm, Algorithm::NdEdge);
        assert_eq!(cfg.weights, Weights { a: 1, b: 1 });
        assert!(!cfg.allow_missing_inputs);
        assert_eq!(cfg.min_confidence, 0.0);
        assert_eq!(cfg.max_issues, 0);
        assert_eq!(cfg.unexplained_escalation, 0);
    }

    #[test]
    fn for_algorithm_only_sets_the_algorithm() {
        let cfg = DiagnosticsConfig::for_algorithm(Algorithm::NdLg);
        assert_eq!(cfg.algorithm, Algorithm::NdLg);
        assert_eq!(
            DiagnosticsConfig {
                algorithm: Algorithm::NdEdge,
                ..cfg
            },
            DiagnosticsConfig::default()
        );
    }
}
