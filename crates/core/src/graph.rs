//! The inferred diagnosis graph `G`: the union of observed traceroute paths,
//! optionally expanded with the paper's *logical links*.
//!
//! Nodes are observed addresses (or synthetic unidentified-hop nodes, unique
//! per path position — stars cannot be identified across paths). Edges are
//! directed consecutive-hop pairs; when logical expansion is enabled, each
//! inter-domain traversal `u → v` on a path whose next AS (after `v`'s) is
//! `n` becomes the two half-links `u → v(n)` and `v(n) → v` of Figure 3.

use std::collections::{BTreeSet, HashMap};
use std::net::Ipv4Addr;

use netdiag_topology::AsId;

use crate::observation::{Hop, IpToAs, ProbePath};

/// Which snapshot a path belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Epoch {
    /// The pre-failure mesh (`T-`).
    Before,
    /// The post-failure mesh (`T+`).
    After,
}

/// Identity of one measured path within the observations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PathRef {
    /// Snapshot the path belongs to.
    pub epoch: Epoch,
    /// Index within that snapshot's path list.
    pub index: usize,
}

/// A node of the diagnosis graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum HopNode {
    /// An observed address.
    Ip(Ipv4Addr),
    /// An unidentified hop: path identity plus hop position (stars cannot
    /// be matched across paths, so each gets its own node).
    Uh(PathRef, usize),
}

/// Which half of a logical link an edge represents (Figure 3 of the paper:
/// `u → v(n)` then `v(n) → v`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LogicalPart {
    /// The `u → v(n)` half, annotated with the next AS `n` on the path.
    First(AsId),
    /// The `v(n) → v` half.
    Second(AsId),
}

/// Dense node index.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Dense edge index.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeId(pub u32);

impl EdgeId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Node payload.
#[derive(Clone, Debug)]
pub struct NodeData {
    /// Observed identity.
    pub key: HopNode,
    /// AS tag: a singleton for mapped addresses, a candidate set for
    /// LG-mapped unidentified hops, `None` when unknown.
    pub tag: Option<BTreeSet<AsId>>,
}

/// Physical identity of an edge, ignoring logical annotations.
///
/// A traceroute hop's address is the *ingress interface* of the link the
/// probe arrived on, and an interface belongs to exactly one link — so an
/// edge between two known addresses is physically identified by its `to`
/// address alone (the `from` address varies with the upstream route, the
/// router-aliasing effect). Edges touching unidentified hops keep
/// pair-identity, preserving the paper's invariant that an unidentified
/// link appears on exactly one path.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PhysId {
    /// Identified by the ingress interface (both endpoints known).
    Ingress(NodeId),
    /// Identified by the endpoint pair (at least one unidentified hop).
    Pair(NodeId, NodeId),
}

/// Edge payload.
#[derive(Clone, Debug)]
pub struct EdgeData {
    /// Source node (first observed; aliases of the same upstream router
    /// merge onto this edge).
    pub from: NodeId,
    /// Target node.
    pub to: NodeId,
    /// Logical-half annotation (None for plain physical edges).
    pub logical: Option<LogicalPart>,
    /// Physical identity (shared by both logical halves and all upstream
    /// aliases).
    pub phys: PhysId,
}

impl EdgeData {
    /// The physical identity of the edge.
    pub fn phys(&self) -> PhysId {
        self.phys
    }
}

/// The inferred diagnosis graph.
#[derive(Clone, Debug, Default)]
pub struct DiagGraph {
    nodes: Vec<NodeData>,
    node_index: HashMap<HopNode, NodeId>,
    edges: Vec<EdgeData>,
    edge_index: HashMap<(PhysId, Option<LogicalPart>), EdgeId>,
}

impl DiagGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a node, resolving its AS tag through `ip2as` for addresses.
    pub fn intern_node(&mut self, key: HopNode, ip2as: &dyn IpToAs) -> NodeId {
        if let Some(&id) = self.node_index.get(&key) {
            return id;
        }
        let tag = match key {
            HopNode::Ip(addr) => ip2as.as_of(addr).map(|a| BTreeSet::from([a])),
            HopNode::Uh(..) => None,
        };
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(NodeData { key, tag });
        self.node_index.insert(key, id);
        id
    }

    /// Interns an edge. Edges between two known addresses are identified by
    /// their ingress (`to`) address: the same physical link observed behind
    /// different upstream aliases merges onto one edge.
    pub fn intern_edge(
        &mut self,
        from: NodeId,
        to: NodeId,
        logical: Option<LogicalPart>,
    ) -> EdgeId {
        let both_known = matches!(self.nodes[from.index()].key, HopNode::Ip(_))
            && matches!(self.nodes[to.index()].key, HopNode::Ip(_));
        let phys = if both_known {
            PhysId::Ingress(to)
        } else {
            PhysId::Pair(from, to)
        };
        if let Some(&id) = self.edge_index.get(&(phys, logical)) {
            return id;
        }
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(EdgeData {
            from,
            to,
            logical,
            phys,
        });
        self.edge_index.insert((phys, logical), id);
        id
    }

    /// Expands a measured path into its edge sequence.
    ///
    /// With `logical` set, inter-domain traversals (both endpoint ASes
    /// known and different) become the two logical half-links; the next-AS
    /// annotation is the first AS after the far endpoint's on the path, or
    /// the destination AS (`dst_as`) when the far endpoint's AS is the last
    /// one observed.
    pub fn expand_path(
        &mut self,
        path: &ProbePath,
        path_ref: PathRef,
        dst_as: AsId,
        ip2as: &dyn IpToAs,
        logical: bool,
    ) -> Vec<EdgeId> {
        let keys: Vec<HopNode> = path
            .hops
            .iter()
            .enumerate()
            .map(|(pos, hop)| match hop {
                Hop::Addr(addr) => HopNode::Ip(*addr),
                Hop::Star => HopNode::Uh(path_ref, pos),
            })
            .collect();
        let nodes: Vec<NodeId> = keys.iter().map(|&k| self.intern_node(k, ip2as)).collect();
        // Per-hop AS (where known), for logical annotation.
        let hop_as: Vec<Option<AsId>> = nodes.iter().map(|&n| self.single_tag(n)).collect();

        let mut edges = Vec::with_capacity(nodes.len().saturating_sub(1));
        for i in 1..nodes.len() {
            let (u, v) = (nodes[i - 1], nodes[i]);
            let interdomain = match (hop_as[i - 1], hop_as[i]) {
                (Some(a), Some(b)) => a != b,
                _ => false,
            };
            if logical && interdomain {
                let v_as = hop_as[i].expect("interdomain implies known");
                let next_as = hop_as[i + 1..]
                    .iter()
                    .flatten()
                    .copied()
                    .find(|&a| a != v_as)
                    .unwrap_or(dst_as);
                edges.push(self.intern_edge(u, v, Some(LogicalPart::First(next_as))));
                edges.push(self.intern_edge(u, v, Some(LogicalPart::Second(next_as))));
            } else {
                edges.push(self.intern_edge(u, v, None));
            }
        }
        edges
    }

    /// The single AS of a node's tag, when it is a singleton.
    fn single_tag(&self, n: NodeId) -> Option<AsId> {
        match &self.nodes[n.index()].tag {
            Some(set) if set.len() == 1 => set.iter().next().copied(),
            _ => None,
        }
    }

    /// Node payload.
    pub fn node(&self, n: NodeId) -> &NodeData {
        &self.nodes[n.index()]
    }

    /// Edge payload.
    pub fn edge(&self, e: EdgeId) -> &EdgeData {
        &self.edges[e.index()]
    }

    /// Sets the AS tag of a node (used by ND-LG for unidentified hops).
    pub fn set_tag(&mut self, n: NodeId, tag: BTreeSet<AsId>) {
        self.nodes[n.index()].tag = Some(tag);
    }

    /// Looks up an interned node.
    pub fn node_id(&self, key: &HopNode) -> Option<NodeId> {
        self.node_index.get(key).copied()
    }

    /// All edges (dense, id order).
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, &EdgeData)> {
        self.edges
            .iter()
            .enumerate()
            .map(|(i, e)| (EdgeId(i as u32), e))
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The observed endpooints of an edge.
    pub fn endpoints(&self, e: EdgeId) -> (HopNode, HopNode) {
        let d = self.edge(e);
        (self.node(d.from).key, self.node(d.to).key)
    }

    /// AS attribution of an edge: the union of its endpoint tags.
    pub fn edge_as_set(&self, e: EdgeId) -> BTreeSet<AsId> {
        let d = self.edge(e);
        let mut set = BTreeSet::new();
        for n in [d.from, d.to] {
            if let Some(tag) = &self.nodes[n.index()].tag {
                set.extend(tag.iter().copied());
            }
        }
        set
    }

    /// True if either endpoint of the edge is an unidentified hop.
    pub fn is_unidentified(&self, e: EdgeId) -> bool {
        let (a, b) = self.endpoints(e);
        matches!(a, HopNode::Uh(..)) || matches!(b, HopNode::Uh(..))
    }

    /// Human-readable node label: the address, or `uh(b3@2)` for the
    /// unidentified hop at position 2 of before-path 3.
    pub fn node_label(&self, n: NodeId) -> String {
        match self.node(n).key {
            HopNode::Ip(addr) => addr.to_string(),
            HopNode::Uh(pr, pos) => {
                let epoch = match pr.epoch {
                    Epoch::Before => 'b',
                    Epoch::After => 'a',
                };
                format!("uh({epoch}{}@{pos})", pr.index)
            }
        }
    }

    /// Human-readable edge label in the paper's Figure 3 notation: plain
    /// edges are `u->v`, the logical halves of an inter-domain traversal
    /// annotated with next-AS `n` are `u->v(ASn)` and `v(ASn)->v`.
    pub fn edge_label(&self, e: EdgeId) -> String {
        let d = self.edge(e);
        let from = self.node_label(d.from);
        let to = self.node_label(d.to);
        match d.logical {
            None => format!("{from}->{to}"),
            Some(LogicalPart::First(n)) => format!("{from}->{to}(AS{})", n.index()),
            Some(LogicalPart::Second(n)) => format!("{to}(AS{})->{to}", n.index()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observation::IpToAsFn;
    use netdiag_topology::SensorId;

    /// ip2as: 10.x.y.z maps to AS x; everything else unknown.
    fn ip2as() -> impl IpToAs {
        IpToAsFn(|addr: Ipv4Addr| {
            (addr.octets()[0] == 10).then_some(AsId(u32::from(addr.octets()[1])))
        })
    }

    fn ip(a: u8, b: u8) -> Hop {
        Hop::Addr(Ipv4Addr::new(10, a, 0, b))
    }

    fn path(hops: Vec<Hop>, reached: bool) -> ProbePath {
        ProbePath {
            src: SensorId(0),
            dst: SensorId(1),
            hops,
            reached,
        }
    }

    const BEFORE0: PathRef = PathRef {
        epoch: Epoch::Before,
        index: 0,
    };

    #[test]
    fn plain_expansion_shares_edges_across_paths() {
        let m = ip2as();
        let mut g = DiagGraph::new();
        let p1 = path(vec![ip(1, 1), ip(2, 1), ip(3, 1)], true);
        let e1 = g.expand_path(&p1, BEFORE0, AsId(3), &m, false);
        let p2 = path(vec![ip(1, 1), ip(2, 1), ip(4, 1)], true);
        let e2 = g.expand_path(
            &p2,
            PathRef {
                epoch: Epoch::Before,
                index: 1,
            },
            AsId(4),
            &m,
            false,
        );
        assert_eq!(e1.len(), 2);
        assert_eq!(e2.len(), 2);
        assert_eq!(e1[0], e2[0], "shared first edge interned once");
        assert_ne!(e1[1], e2[1]);
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn logical_expansion_splits_interdomain_links() {
        let m = ip2as();
        let mut g = DiagGraph::new();
        // AS1 -> AS2 -> AS2 -> AS3 (dst in AS3): one interdomain hop 1->2
        // annotated AS3, one intra 2->2, one interdomain 2->3 annotated AS3
        // (terminal).
        let p = path(vec![ip(1, 1), ip(2, 1), ip(2, 2), ip(3, 1)], true);
        let edges = g.expand_path(&p, BEFORE0, AsId(3), &m, true);
        // 2 + 1 + 2 edges.
        assert_eq!(edges.len(), 5);
        let parts: Vec<Option<LogicalPart>> = edges.iter().map(|&e| g.edge(e).logical).collect();
        assert_eq!(
            parts,
            vec![
                Some(LogicalPart::First(AsId(3))),
                Some(LogicalPart::Second(AsId(3))),
                None,
                Some(LogicalPart::First(AsId(3))),
                Some(LogicalPart::Second(AsId(3))),
            ]
        );
        // Both halves share the physical identity.
        assert_eq!(g.edge(edges[0]).phys(), g.edge(edges[1]).phys());
    }

    #[test]
    fn logical_annotation_differs_per_downstream_as() {
        let m = ip2as();
        let mut g = DiagGraph::new();
        // Same physical link 10.1.0.1 -> 10.2.0.1 on two paths with
        // different next ASes (the Figure 3 situation).
        let p1 = path(vec![ip(1, 1), ip(2, 1), ip(3, 1)], true);
        let p2 = path(vec![ip(1, 1), ip(2, 1), ip(4, 1)], true);
        let e1 = g.expand_path(&p1, BEFORE0, AsId(3), &m, true);
        let e2 = g.expand_path(
            &p2,
            PathRef {
                epoch: Epoch::Before,
                index: 1,
            },
            AsId(4),
            &m,
            true,
        );
        // First halves differ (annotations AS3 vs AS4) but share phys.
        assert_ne!(e1[0], e2[0]);
        assert_eq!(g.edge(e1[0]).phys(), g.edge(e2[0]).phys());
    }

    #[test]
    fn stars_become_unique_uh_nodes() {
        let m = ip2as();
        let mut g = DiagGraph::new();
        let p1 = path(vec![ip(1, 1), Hop::Star, ip(3, 1)], true);
        let p2 = path(vec![ip(1, 1), Hop::Star, ip(3, 1)], true);
        g.expand_path(&p1, BEFORE0, AsId(3), &m, false);
        g.expand_path(
            &p2,
            PathRef {
                epoch: Epoch::Before,
                index: 1,
            },
            AsId(3),
            &m,
            false,
        );
        // Stars do not merge: 2 shared Ip nodes + 2 distinct Uh nodes.
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        let uh_edges: Vec<_> = g.edges().filter(|(id, _)| g.is_unidentified(*id)).collect();
        assert_eq!(uh_edges.len(), 4);
    }

    #[test]
    fn uh_adjacent_links_are_not_logical() {
        let m = ip2as();
        let mut g = DiagGraph::new();
        let p = path(vec![ip(1, 1), Hop::Star, ip(3, 1)], true);
        let edges = g.expand_path(&p, BEFORE0, AsId(3), &m, true);
        assert!(edges.iter().all(|&e| g.edge(e).logical.is_none()));
    }

    #[test]
    fn edge_as_attribution() {
        let m = ip2as();
        let mut g = DiagGraph::new();
        let p = path(vec![ip(1, 1), ip(2, 1)], true);
        let edges = g.expand_path(&p, BEFORE0, AsId(2), &m, false);
        assert_eq!(g.edge_as_set(edges[0]), BTreeSet::from([AsId(1), AsId(2)]));
    }

    #[test]
    fn set_tag_updates_attribution() {
        let m = ip2as();
        let mut g = DiagGraph::new();
        let p = path(vec![ip(1, 1), Hop::Star], false);
        let edges = g.expand_path(&p, BEFORE0, AsId(3), &m, false);
        let uh = g.edge(edges[0]).to;
        assert_eq!(g.edge_as_set(edges[0]), BTreeSet::from([AsId(1)]));
        g.set_tag(uh, BTreeSet::from([AsId(7), AsId(8)]));
        assert_eq!(
            g.edge_as_set(edges[0]),
            BTreeSet::from([AsId(1), AsId(7), AsId(8)])
        );
    }
}
