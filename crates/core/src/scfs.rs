//! SCFS — Duffield's "Smallest Common Failure Set" algorithm for tree
//! topologies (the single-source baseline the paper starts from, §2.1).
//!
//! Given the paths from one source to several destinations (which form a
//! tree) and each destination's good/bad status, SCFS marks as failed the
//! links *nearest the source* consistent with the observations: an edge
//! `(u, v)` is in the failure set iff every destination below `v` is bad
//! while the subtree of `u` still contains a good destination (or `u` is
//! the source itself).

use std::collections::{BTreeMap, BTreeSet};

/// Runs SCFS.
///
/// ```
/// use netdiagnoser::scfs;
///
/// // s -> a -> d1 (broken), s -> a -> e (working): blame edge a->d1.
/// let failed = scfs(&"s", &[
///     (vec!["s", "a", "d1"], false),
///     (vec!["s", "a", "e"], true),
/// ]);
/// assert!(failed.contains(&("a", "d1")));
/// ```
///
/// `paths` are node sequences starting at `source`; the final node of each
/// path is a destination with the given status (`true` = good). The path
/// union must form a tree rooted at `source`.
///
/// # Panics
///
/// Panics if a node has two different parents (the input is not a tree) or
/// a path does not start at `source`.
pub fn scfs<T: Ord + Clone>(source: &T, paths: &[(Vec<T>, bool)]) -> BTreeSet<(T, T)> {
    let mut parent: BTreeMap<T, T> = BTreeMap::new();
    let mut children: BTreeMap<T, Vec<T>> = BTreeMap::new();
    let mut dest_status: BTreeMap<T, bool> = BTreeMap::new();

    for (path, good) in paths {
        assert!(
            path.first() == Some(source),
            "every path must start at the source"
        );
        for w in path.windows(2) {
            let (u, v) = (&w[0], &w[1]);
            match parent.get(v) {
                Some(p) => assert!(p == u, "node has two parents: not a tree"),
                None => {
                    parent.insert(v.clone(), u.clone());
                    children.entry(u.clone()).or_default().push(v.clone());
                }
            }
        }
        if let Some(last) = path.last() {
            // A destination probed by several paths keeps the AND of its
            // statuses (it should be consistent anyway).
            let e = dest_status.entry(last.clone()).or_insert(true);
            *e &= *good;
        }
    }

    // all_bad(v): every destination in v's subtree is bad.
    fn all_bad<T: Ord + Clone>(
        v: &T,
        children: &BTreeMap<T, Vec<T>>,
        dest_status: &BTreeMap<T, bool>,
        memo: &mut BTreeMap<T, bool>,
    ) -> bool {
        if let Some(&m) = memo.get(v) {
            return m;
        }
        let own = dest_status.get(v).map(|&good| !good).unwrap_or(true);
        let kids = children.get(v).cloned().unwrap_or_default();
        let result = own && kids.iter().all(|c| all_bad(c, children, dest_status, memo));
        memo.insert(v.clone(), result);
        result
    }

    let mut memo = BTreeMap::new();
    let mut failed = BTreeSet::new();
    for (v, u) in parent.iter() {
        if all_bad(v, &children, &dest_status, &mut memo)
            && (u == source || !all_bad(u, &children, &dest_status, &mut memo))
        {
            failed.insert((u.clone(), v.clone()));
        }
    }
    failed
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tree:   s - a - b - d1
    ///                \
    ///                 c - d2
    fn paths(d1_good: bool, d2_good: bool) -> Vec<(Vec<&'static str>, bool)> {
        vec![
            (vec!["s", "a", "b", "d1"], d1_good),
            (vec!["s", "a", "c", "d2"], d2_good),
        ]
    }

    #[test]
    fn nothing_failed_when_all_good() {
        assert!(scfs(&"s", &paths(true, true)).is_empty());
    }

    #[test]
    fn single_bad_branch_marked_at_divergence() {
        // d1 bad, d2 good: the highest all-bad subtree is b.
        let failed = scfs(&"s", &paths(false, true));
        assert_eq!(failed, BTreeSet::from([("a", "b")]));
    }

    #[test]
    fn all_bad_marks_link_nearest_source() {
        let failed = scfs(&"s", &paths(false, false));
        assert_eq!(failed, BTreeSet::from([("s", "a")]));
    }

    #[test]
    fn deep_chain_marks_highest_consistent_link() {
        // s - a - b - c - d (bad); s - a - e (good).
        let paths = vec![
            (vec!["s", "a", "b", "c", "d"], false),
            (vec!["s", "a", "e"], true),
        ];
        let failed = scfs(&"s", &paths);
        assert_eq!(failed, BTreeSet::from([("a", "b")]));
    }

    #[test]
    fn two_independent_failures() {
        // Three branches from a: d1 bad, d2 bad, d3 good -> both bad
        // branches marked at their divergence edges.
        let paths = vec![
            (vec!["s", "a", "b", "d1"], false),
            (vec!["s", "a", "c", "d2"], false),
            (vec!["s", "a", "e", "d3"], true),
        ];
        let failed = scfs(&"s", &paths);
        assert_eq!(failed, BTreeSet::from([("a", "b"), ("a", "c")]));
    }

    #[test]
    #[should_panic(expected = "not a tree")]
    fn rejects_non_tree_input() {
        let paths = vec![
            (vec!["s", "a", "b"], true),
            (vec!["s", "c", "b"], true), // b gains a second parent
        ];
        scfs(&"s", &paths);
    }

    #[test]
    #[should_panic(expected = "start at the source")]
    fn rejects_wrong_source() {
        scfs(&"s", &[(vec!["x", "a"], true)]);
    }
}
