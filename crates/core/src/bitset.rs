//! A dense bitset over [`EdgeId`]s.
//!
//! The hitting-set hot loop spends its time asking "does this failure set
//! contain edge e?" for every candidate × set pair. A dense `Vec<u64>`
//! answers that with one word load and turns set-overlap scoring into
//! popcounts, replacing the pointer-chasing `BTreeSet<EdgeId>` the seed
//! implementation used. Iteration order is ascending edge id — the same
//! order a `BTreeSet` yields — so greedy tie-breaking is bit-identical.

use crate::graph::EdgeId;

/// Bits per storage word.
const WORD_BITS: usize = 64;

/// A set of [`EdgeId`]s stored as a dense bit vector.
///
/// Edge ids are small dense indices (the diagnosis graph numbers edges from
/// zero), so a `Vec<u64>` with one bit per possible edge is both compact
/// and fast. Trailing zero words are allowed and ignored by comparisons:
/// two sets with the same members are equal regardless of capacity.
#[derive(Clone, Debug, Default)]
pub struct EdgeBitSet {
    words: Vec<u64>,
}

impl EdgeBitSet {
    /// An empty set.
    pub fn new() -> Self {
        EdgeBitSet { words: Vec::new() }
    }

    /// An empty set with room for edges `0..n_edges` without reallocating.
    pub fn with_capacity(n_edges: usize) -> Self {
        EdgeBitSet {
            words: vec![0; n_edges.div_ceil(WORD_BITS)],
        }
    }

    /// Adds an edge. Returns true if it was not already present.
    pub fn insert(&mut self, e: EdgeId) -> bool {
        let (w, b) = (e.index() / WORD_BITS, e.index() % WORD_BITS);
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] |= 1 << b;
        !had
    }

    /// Removes an edge. Returns true if it was present.
    pub fn remove(&mut self, e: EdgeId) -> bool {
        let (w, b) = (e.index() / WORD_BITS, e.index() % WORD_BITS);
        if w >= self.words.len() {
            return false;
        }
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        had
    }

    /// Membership test: one word load.
    // hot
    pub fn contains(&self, e: EdgeId) -> bool {
        let (w, b) = (e.index() / WORD_BITS, e.index() % WORD_BITS);
        self.words.get(w).is_some_and(|word| word & (1 << b) != 0)
    }

    /// Number of members (popcount over the words).
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when no edge is present.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Removes all members.
    pub fn clear(&mut self) {
        self.words.clear();
    }

    /// True when the two sets share at least one member.
    // hot
    pub fn intersects(&self, other: &EdgeBitSet) -> bool {
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// Keeps only the members for which `keep` returns true.
    // hot
    pub fn retain(&mut self, mut keep: impl FnMut(EdgeId) -> bool) {
        for w in 0..self.words.len() {
            let mut word = self.words[w];
            while word != 0 {
                let b = word.trailing_zeros() as usize;
                word &= word - 1;
                let e = EdgeId((w * WORD_BITS + b) as u32);
                if !keep(e) {
                    self.words[w] &= !(1 << b);
                }
            }
        }
    }

    /// Iterates members in ascending edge-id order (the `BTreeSet` order).
    // hot
    pub fn iter(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.words.iter().enumerate().flat_map(|(w, &word)| {
            let mut word = word;
            std::iter::from_fn(move || {
                if word == 0 {
                    return None;
                }
                let b = word.trailing_zeros() as usize;
                word &= word - 1;
                Some(EdgeId((w * WORD_BITS + b) as u32))
            })
        })
    }

    /// The backing words (low edge ids first). Exposed so scoring loops can
    /// account for the words they touch (`hitting_set.words_scanned`).
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

impl PartialEq for EdgeBitSet {
    fn eq(&self, other: &Self) -> bool {
        let (short, long) = if self.words.len() <= other.words.len() {
            (&self.words, &other.words)
        } else {
            (&other.words, &self.words)
        };
        short == &long[..short.len()] && long[short.len()..].iter().all(|&w| w == 0)
    }
}

impl Eq for EdgeBitSet {}

impl FromIterator<EdgeId> for EdgeBitSet {
    fn from_iter<I: IntoIterator<Item = EdgeId>>(iter: I) -> Self {
        let mut s = EdgeBitSet::new();
        for e in iter {
            s.insert(e);
        }
        s
    }
}

impl Extend<EdgeId> for EdgeBitSet {
    fn extend<I: IntoIterator<Item = EdgeId>>(&mut self, iter: I) {
        for e in iter {
            self.insert(e);
        }
    }
}

impl<'a> IntoIterator for &'a EdgeBitSet {
    type Item = EdgeId;
    type IntoIter = Box<dyn Iterator<Item = EdgeId> + 'a>;

    fn into_iter(self) -> Self::IntoIter {
        Box::new(self.iter())
    }
}

impl<const N: usize> From<[EdgeId; N]> for EdgeBitSet {
    fn from(edges: [EdgeId; N]) -> Self {
        edges.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(i: u32) -> EdgeId {
        EdgeId(i)
    }

    #[test]
    fn insert_contains_remove() {
        let mut s = EdgeBitSet::new();
        assert!(s.insert(e(3)));
        assert!(!s.insert(e(3)));
        assert!(s.contains(e(3)));
        assert!(!s.contains(e(4)));
        assert!(s.remove(e(3)));
        assert!(!s.remove(e(3)));
        assert!(s.is_empty());
        // Out-of-capacity queries are just "absent".
        assert!(!s.contains(e(1000)));
        assert!(!s.remove(e(1000)));
    }

    #[test]
    fn iteration_is_ascending_like_btreeset() {
        use std::collections::BTreeSet;
        let ids = [77u32, 0, 64, 63, 5, 128];
        let bits: EdgeBitSet = ids.iter().map(|&i| e(i)).collect();
        let tree: BTreeSet<EdgeId> = ids.iter().map(|&i| e(i)).collect();
        assert_eq!(
            bits.iter().collect::<Vec<_>>(),
            tree.into_iter().collect::<Vec<_>>()
        );
        assert_eq!(bits.len(), ids.len());
    }

    #[test]
    fn equality_ignores_trailing_capacity() {
        let mut a = EdgeBitSet::with_capacity(1000);
        let mut b = EdgeBitSet::new();
        a.insert(e(2));
        b.insert(e(2));
        assert_eq!(a, b);
        b.insert(e(999));
        assert_ne!(a, b);
    }

    #[test]
    fn retain_and_intersects() {
        let mut s: EdgeBitSet = (0..200).map(e).collect();
        s.retain(|edge| edge.0 % 3 == 0);
        assert_eq!(s.len(), 67);
        assert!(s.contains(e(198)) && !s.contains(e(199)));
        let other: EdgeBitSet = [e(198)].into();
        assert!(s.intersects(&other));
        let disjoint: EdgeBitSet = [e(1)].into();
        assert!(!s.intersects(&disjoint));
        assert!(!s.intersects(&EdgeBitSet::new()));
    }
}
