//! Ranking hypothesis links by evidence strength.
//!
//! The paper's output is an unordered hypothesis set; an operator checking
//! suspects one by one benefits from an ordering. The ranking is purely
//! derived from the evidence the algorithms already collected: IGP
//! confirmation first, then coverage (how many failed/rerouted paths the
//! link explains).

use crate::diagnosis::Diagnosis;
use crate::graph::EdgeId;

/// One ranked suspect link.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RankedSuspect {
    /// The hypothesis edge.
    pub edge: EdgeId,
    /// Confirmed by an IGP link-down message (always ranked first).
    pub forced_by_igp: bool,
    /// Number of failure sets containing this edge.
    pub failure_sets_hit: usize,
    /// Number of reroute sets containing this edge.
    pub reroute_sets_hit: usize,
    /// True for logical (per-neighbor) half-links — evidence of a
    /// misconfiguration rather than a physical fault.
    pub is_logical: bool,
}

/// Ranks the hypothesis: IGP-confirmed links first, then by how much of
/// the observed damage each link explains (failure coverage, then reroute
/// coverage), with edge id as the deterministic tie-break.
pub fn rank(diagnosis: &Diagnosis) -> Vec<RankedSuspect> {
    let mut out: Vec<RankedSuspect> = diagnosis
        .hypothesis
        .iter()
        .map(|&edge| RankedSuspect {
            edge,
            forced_by_igp: diagnosis.problem.forced.contains(&edge),
            failure_sets_hit: diagnosis
                .problem
                .failure_sets
                .iter()
                .filter(|s| s.edges.contains(edge))
                .count(),
            reroute_sets_hit: diagnosis
                .problem
                .reroute_sets
                .iter()
                .filter(|s| s.edges.contains(edge))
                .count(),
            is_logical: diagnosis.graph().edge(edge).logical.is_some(),
        })
        .collect();
    out.sort_by(|a, b| {
        b.forced_by_igp
            .cmp(&a.forced_by_igp)
            .then(b.failure_sets_hit.cmp(&a.failure_sets_hit))
            .then(b.reroute_sets_hit.cmp(&a.reroute_sets_hit))
            .then(a.edge.cmp(&b.edge))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observation::{Hop, IpToAsFn, Observations, ProbePath, SensorMeta, Snapshot};
    use netdiag_topology::{AsId, SensorId};
    use std::net::Ipv4Addr;

    /// Two failed paths sharing one edge: the shared edge must rank first.
    #[test]
    fn shared_edge_ranks_first() {
        let a = |x: u8, y: u8| Ipv4Addr::new(10, x, 0, y);
        let sensors = vec![
            SensorMeta {
                id: SensorId(0),
                addr: a(1, 200),
                as_id: AsId(1),
            },
            SensorMeta {
                id: SensorId(1),
                addr: a(2, 200),
                as_id: AsId(2),
            },
            SensorMeta {
                id: SensorId(2),
                addr: a(3, 200),
                as_id: AsId(3),
            },
        ];
        // Both paths cross the shared *intra-domain* hop 10.1.0.5 (same AS
        // as the source router, so the edge has no per-destination logical
        // annotation and is one shared candidate), then diverge.
        let p = |dst: u32, tail: u8| ProbePath {
            src: SensorId(0),
            dst: SensorId(dst),
            hops: vec![
                Hop::Addr(a(1, 1)),
                Hop::Addr(Ipv4Addr::new(10, 1, 0, 5)),
                Hop::Addr(Ipv4Addr::new(10, 9, 0, tail)),
                Hop::Addr(a(dst as u8 + 1, 200)),
            ],
            reached: true,
        };
        let broken = |dst: u32| ProbePath {
            src: SensorId(0),
            dst: SensorId(dst),
            hops: vec![Hop::Addr(a(1, 1))],
            reached: false,
        };
        let obs = Observations {
            sensors,
            before: Snapshot {
                paths: vec![p(1, 11), p(2, 22)],
            },
            after: Snapshot {
                paths: vec![broken(1), broken(2)],
            },
        };
        let ip2as = IpToAsFn(|addr: Ipv4Addr| Some(AsId(u32::from(addr.octets()[1]))));
        let d = crate::algorithms::nd_edge(&obs, &ip2as, crate::Weights::default());
        let ranked = rank(&d);
        assert!(!ranked.is_empty());
        // Top suspect covers both failure sets; any divergent-tail edge
        // covers one.
        assert_eq!(ranked[0].failure_sets_hit, 2);
        assert!(ranked.iter().all(|r| r.failure_sets_hit <= 2));
        assert!(
            ranked
                .windows(2)
                .all(|w| w[0].failure_sets_hit >= w[1].failure_sets_hit),
            "non-increasing coverage"
        );
        // Deterministic.
        assert_eq!(rank(&d), ranked);
    }
}
