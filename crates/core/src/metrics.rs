//! Evaluation metrics: sensitivity, specificity (link- and AS-level), and
//! the diagnosability of an inferred graph (§4 of the paper).

use std::collections::BTreeSet;

use netdiag_topology::AsId;

/// `sensitivity = |F ∩ H| / |F|` — the fraction of actually-failed items
/// the hypothesis recovered (1.0 when nothing failed).
pub fn sensitivity<T: Ord>(failed: &BTreeSet<T>, hypothesis: &BTreeSet<T>) -> f64 {
    if failed.is_empty() {
        return 1.0;
    }
    let tp = failed.intersection(hypothesis).count();
    tp as f64 / failed.len() as f64
}

/// `specificity = |(E\F) ∩ (E\H)| / |E\F|` — the fraction of non-failed
/// items correctly left out of the hypothesis (1.0 when everything failed).
pub fn specificity<T: Ord>(
    universe: &BTreeSet<T>,
    failed: &BTreeSet<T>,
    hypothesis: &BTreeSet<T>,
) -> f64 {
    let non_failed: Vec<&T> = universe.difference(failed).collect();
    if non_failed.is_empty() {
        return 1.0;
    }
    let tn = non_failed
        .iter()
        .filter(|t| !hypothesis.contains(**t))
        .count();
    tn as f64 / non_failed.len() as f64
}

/// AS-level sensitivity: the fraction of failed links for which at least
/// one of the link's owning ASes appears in the hypothesized AS set.
/// (An inter-domain link belongs to both of its endpoint ASes; naming
/// either counts as locating the failure.)
pub fn as_sensitivity(
    failed_link_ases: &[BTreeSet<AsId>],
    hypothesis_ases: &BTreeSet<AsId>,
) -> f64 {
    if failed_link_ases.is_empty() {
        return 1.0;
    }
    let found = failed_link_ases
        .iter()
        .filter(|ases| ases.iter().any(|a| hypothesis_ases.contains(a)))
        .count();
    found as f64 / failed_link_ases.len() as f64
}

/// AS-level specificity over the ASes covered by probes: the fraction of
/// probed, non-failed ASes correctly absent from the hypothesized AS set.
pub fn as_specificity(
    probed_ases: &BTreeSet<AsId>,
    failed_ases: &BTreeSet<AsId>,
    hypothesis_ases: &BTreeSet<AsId>,
) -> f64 {
    let non_failed: Vec<&AsId> = probed_ases.difference(failed_ases).collect();
    if non_failed.is_empty() {
        return 1.0;
    }
    let tn = non_failed
        .iter()
        .filter(|a| !hypothesis_ases.contains(**a))
        .count();
    tn as f64 / non_failed.len() as f64
}

/// Diagnosability `D(G) = |HS(G)| / |E|` (§4): the number of distinct
/// hitting sets `h(ℓ)` (sets of paths traversing a link) over the number of
/// probed links. `D = 1` means any single-link failure is exactly
/// identifiable; input is the per-path link list.
pub fn diagnosability<T: Ord + Clone>(paths: &[Vec<T>]) -> f64 {
    use std::collections::BTreeMap;
    let mut hit: BTreeMap<&T, BTreeSet<usize>> = BTreeMap::new();
    for (i, path) in paths.iter().enumerate() {
        for link in path {
            hit.entry(link).or_default().insert(i);
        }
    }
    if hit.is_empty() {
        return 0.0;
    }
    let links = hit.len();
    let distinct: BTreeSet<&BTreeSet<usize>> = hit.values().collect();
    distinct.len() as f64 / links as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[u32]) -> BTreeSet<u32> {
        v.iter().copied().collect()
    }

    #[test]
    fn sensitivity_basics() {
        assert_eq!(sensitivity(&s(&[1, 2]), &s(&[1, 2, 3])), 1.0);
        assert_eq!(sensitivity(&s(&[1, 2]), &s(&[1])), 0.5);
        assert_eq!(sensitivity(&s(&[1, 2]), &s(&[9])), 0.0);
        assert_eq!(sensitivity(&s(&[]), &s(&[9])), 1.0);
    }

    #[test]
    fn specificity_basics() {
        let universe = s(&[1, 2, 3, 4, 5]);
        // F={1}, H={1,2}: non-failed {2,3,4,5}, of which {3,4,5} excluded.
        assert_eq!(specificity(&universe, &s(&[1]), &s(&[1, 2])), 0.75);
        // Perfect hypothesis: specificity 1.
        assert_eq!(specificity(&universe, &s(&[1]), &s(&[1])), 1.0);
        // Everything hypothesized: specificity 0.
        assert_eq!(specificity(&universe, &s(&[1]), &universe), 0.0);
    }

    #[test]
    fn specificity_paper_example() {
        // §4: |E|=150, |F|=1, |H|=10 -> 140/149 ≈ 0.9396.
        let universe: BTreeSet<u32> = (0..150).collect();
        let failed = s(&[0]);
        let hypothesis: BTreeSet<u32> = (0..10).collect();
        let got = specificity(&universe, &failed, &hypothesis);
        assert!((got - 140.0 / 149.0).abs() < 1e-12);
    }

    #[test]
    fn as_level_metrics() {
        let failed = vec![
            BTreeSet::from([AsId(1), AsId(2)]),
            BTreeSet::from([AsId(5)]),
        ];
        let hyp = BTreeSet::from([AsId(2), AsId(9)]);
        assert_eq!(as_sensitivity(&failed, &hyp), 0.5);
        assert_eq!(as_sensitivity(&[], &hyp), 1.0);

        let probed = BTreeSet::from([AsId(1), AsId(2), AsId(5), AsId(9), AsId(10)]);
        let failed_union = BTreeSet::from([AsId(1), AsId(2), AsId(5)]);
        // Non-failed probed: {9, 10}; hypothesis wrongly names 9.
        assert_eq!(as_specificity(&probed, &failed_union, &hyp), 0.5);
    }

    #[test]
    fn diagnosability_extremes() {
        // Two paths over disjoint single links: every link has a unique
        // hitting set -> D = 1.
        assert_eq!(diagnosability(&[vec![1], vec![2]]), 1.0);
        // Two links always traversed together -> 1 distinct set over 2
        // links -> D = 0.5.
        assert_eq!(diagnosability(&[vec![1, 2], vec![1, 2]]), 0.5);
        // No paths -> 0.
        assert_eq!(diagnosability::<u32>(&[]), 0.0);
    }

    #[test]
    fn diagnosability_mixed() {
        // Links: 1 in paths {0,1}; 2 in {0}; 3 in {1}: three distinct sets
        // over three links.
        let d = diagnosability(&[vec![1, 2], vec![1, 3]]);
        assert_eq!(d, 1.0);
        // Add link 4 shadowing link 2 (same paths): 3 distinct / 4 links.
        let d = diagnosability(&[vec![1, 2, 4], vec![1, 3]]);
        assert_eq!(d, 0.75);
    }
}
