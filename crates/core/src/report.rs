//! Human-readable diagnosis reports — what the troubleshooter shows the
//! operator.

use std::fmt::Write as _;

use crate::diagnosis::Diagnosis;
use crate::graph::{HopNode, LogicalPart};

/// Renders a diagnosis as an operator-facing text report: the suspect
/// links (with logical annotations explained), the suspect ASes, and the
/// algorithm's confidence caveats (unexplained failures).
pub fn render(diagnosis: &Diagnosis) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "=== NetDiagnoser report ===");
    let _ = writeln!(
        out,
        "observed: {} failed path(s), {} rerouted path(s), {} probed link(s)",
        diagnosis.problem.failure_sets.len(),
        diagnosis.problem.reroute_sets.len(),
        diagnosis.problem.graph.edge_count(),
    );
    if diagnosis.is_empty() {
        let _ = writeln!(out, "no suspect links (nothing to explain)");
        return out;
    }

    // Identified links are listed individually, strongest evidence first;
    // unidentified ones (stars) are grouped by candidate-AS attribution.
    let ranked = crate::ranking::rank(diagnosis);
    let (identified, unidentified): (Vec<_>, Vec<_>) = ranked
        .iter()
        .partition(|r| !diagnosis.graph().is_unidentified(r.edge));

    let _ = writeln!(out, "\nsuspect links ({}):", diagnosis.len());
    for r in identified {
        let data = diagnosis.graph().edge(r.edge);
        let (from, to) = diagnosis.graph().endpoints(r.edge);
        let mut line = format!(
            "  {} -> {}  [explains {} failed / {} rerouted path(s)]",
            fmt_node(&from),
            fmt_node(&to),
            r.failure_sets_hit,
            r.reroute_sets_hit
        );
        match data.logical {
            Some(LogicalPart::First(a)) | Some(LogicalPart::Second(a)) => {
                let _ = write!(
                    line,
                    "  (only for routes toward {a}: likely a BGP export misconfiguration)"
                );
            }
            None => {}
        }
        if r.forced_by_igp {
            let _ = write!(line, "  [confirmed by IGP link-down]");
        }
        let _ = writeln!(out, "{line}");
    }
    if !unidentified.is_empty() {
        // Group by AS attribution.
        let mut groups: std::collections::BTreeMap<Vec<String>, usize> = Default::default();
        for r in unidentified {
            let ases: Vec<String> = diagnosis
                .problem
                .graph
                .edge_as_set(r.edge)
                .iter()
                .map(|a| a.to_string())
                .collect();
            *groups.entry(ases).or_default() += 1;
        }
        for (ases, count) in groups {
            let place = if ases.is_empty() {
                "unmapped ASes (no Looking Glass coverage)".to_string()
            } else {
                format!("AS candidates {{{}}}", ases.join(", "))
            };
            let _ = writeln!(
                out,
                "  {count} unidentified link(s) behind traceroute-blocking hops — {place}"
            );
        }
    }

    let ases = diagnosis.as_hypothesis();
    if !ases.is_empty() {
        let names: Vec<String> = ases.iter().map(|a| a.to_string()).collect();
        let _ = writeln!(out, "\nsuspect ASes: {}", names.join(", "));
    }

    let unexplained = diagnosis.unexplained_failures();
    if unexplained > 0 {
        let _ = writeln!(
            out,
            "\nwarning: {unexplained} failed path(s) could not be explained by any \
             candidate link (evidence exonerates every link on them)"
        );
    }
    out
}

fn fmt_node(node: &HopNode) -> String {
    match node {
        HopNode::Ip(a) => a.to_string(),
        HopNode::Uh(path, pos) => format!(
            "unidentified-hop({:?}#{} pos {pos})",
            path.epoch, path.index
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observation::{Hop, IpToAsFn, Observations, ProbePath, SensorMeta, Snapshot};
    use netdiag_topology::{AsId, SensorId};
    use std::net::Ipv4Addr;

    fn obs() -> Observations {
        let a = |x: u8, y: u8| Ipv4Addr::new(10, x, 0, y);
        Observations {
            sensors: vec![
                SensorMeta {
                    id: SensorId(0),
                    addr: a(1, 200),
                    as_id: AsId(1),
                },
                SensorMeta {
                    id: SensorId(1),
                    addr: a(2, 200),
                    as_id: AsId(2),
                },
            ],
            before: Snapshot {
                paths: vec![ProbePath {
                    src: SensorId(0),
                    dst: SensorId(1),
                    hops: vec![Hop::Addr(a(1, 1)), Hop::Addr(a(2, 1)), Hop::Addr(a(2, 200))],
                    reached: true,
                }],
            },
            after: Snapshot {
                paths: vec![ProbePath {
                    src: SensorId(0),
                    dst: SensorId(1),
                    hops: vec![Hop::Addr(a(1, 1))],
                    reached: false,
                }],
            },
        }
    }

    #[test]
    fn report_lists_suspects_and_ases() {
        let ip2as = IpToAsFn(|addr: Ipv4Addr| Some(AsId(u32::from(addr.octets()[1]))));
        let d = crate::algorithms::tomo(&obs(), &ip2as);
        let text = render(&d);
        assert!(text.contains("suspect links"));
        assert!(text.contains("suspect ASes"));
        assert!(text.contains("10.2.0.1"));
    }

    #[test]
    fn empty_diagnosis_reports_nothing_to_explain() {
        let mut o = obs();
        o.after = o.before.clone(); // nothing failed
        let ip2as = IpToAsFn(|addr: Ipv4Addr| Some(AsId(u32::from(addr.octets()[1]))));
        let d = crate::algorithms::tomo(&o, &ip2as);
        let text = render(&d);
        assert!(text.contains("no suspect links"));
    }
}
