//! Structured diagnosis reports — what the troubleshooter hands the
//! operator (and the serve daemon hands its clients).
//!
//! A [`DiagnosticReport`] is a severity-ranked list of typed [`Issue`]s
//! plus whole-run [`ReportCounters`], built from a [`Diagnosis`] under a
//! [`DiagnosticsConfig`]. It serializes to a stable, schema-versioned JSON
//! document ([`DiagnosticReport::to_json`] / [`from_json`]) and its
//! [`Display`](std::fmt::Display) renders the historical flat-text report
//! byte-for-byte, so existing consumers of [`render`] see no change.
//!
//! [`from_json`]: DiagnosticReport::from_json

use std::fmt;
use std::fmt::Write as _;

use netdiag_obs::json::{self, Json};

use crate::config::DiagnosticsConfig;
use crate::diagnosis::Diagnosis;
use crate::facade::Algorithm;
use crate::graph::LogicalPart;

/// Version tag written into every report, bumped on shape changes.
pub const REPORT_SCHEMA_VERSION: u32 = 1;

/// How urgent one finding (or a whole report) is. Ordered: a report's
/// overall severity is the maximum over its issues.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum Severity {
    /// Context the operator may want (e.g. the AS-level summary).
    #[default]
    Info,
    /// Something needs attention but the evidence is indirect.
    Warning,
    /// A concrete suspect backed by probe evidence.
    Error,
    /// Corroborated by control-plane data — act on it.
    Critical,
}

impl Severity {
    /// The canonical lowercase name (used in JSON).
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
            Severity::Critical => "critical",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for Severity {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "info" => Ok(Severity::Info),
            "warning" => Ok(Severity::Warning),
            "error" => Ok(Severity::Error),
            "critical" => Ok(Severity::Critical),
            other => Err(format!("unknown severity {other:?}")),
        }
    }
}

/// What kind of finding an [`Issue`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IssueCategory {
    /// An identified link whose failure explains broken paths.
    LinkFailure,
    /// An identified logical link: only routes toward one AS break,
    /// pointing at a BGP export misconfiguration rather than a dead wire.
    ExportMisconfig,
    /// Unidentified links behind traceroute-blocking hops, grouped by
    /// candidate-AS attribution.
    UnidentifiedLinks,
    /// The AS-level summary of the hypothesis.
    SuspectAses,
    /// Failed paths no candidate link can explain.
    UnexplainedFailures,
}

impl IssueCategory {
    /// The canonical kebab-case name (used in JSON).
    pub fn as_str(self) -> &'static str {
        match self {
            IssueCategory::LinkFailure => "link-failure",
            IssueCategory::ExportMisconfig => "export-misconfig",
            IssueCategory::UnidentifiedLinks => "unidentified-links",
            IssueCategory::SuspectAses => "suspect-ases",
            IssueCategory::UnexplainedFailures => "unexplained-failures",
        }
    }
}

impl std::str::FromStr for IssueCategory {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "link-failure" => Ok(IssueCategory::LinkFailure),
            "export-misconfig" => Ok(IssueCategory::ExportMisconfig),
            "unidentified-links" => Ok(IssueCategory::UnidentifiedLinks),
            "suspect-ases" => Ok(IssueCategory::SuspectAses),
            "unexplained-failures" => Ok(IssueCategory::UnexplainedFailures),
            other => Err(format!("unknown issue category {other:?}")),
        }
    }
}

/// The typed evidence behind one [`Issue`].
#[derive(Clone, Debug, PartialEq)]
pub enum IssueDetail {
    /// One identified suspect link.
    Link {
        /// Rendered source endpoint (address or unidentified-hop label).
        from: String,
        /// Rendered destination endpoint.
        to: String,
        /// Failure sets this link's failure would explain.
        failed_explained: usize,
        /// Reroute sets consistent with this link's failure.
        rerouted_explained: usize,
        /// `Some(AS)` when only routes toward that AS break (a logical
        /// link — likely a BGP export misconfiguration).
        misconfig_toward: Option<String>,
        /// Did an IGP link-down message corroborate the suspicion?
        igp_confirmed: bool,
    },
    /// A group of unidentified links sharing one AS attribution.
    UnidentifiedGroup {
        /// How many unidentified links share this attribution.
        count: usize,
        /// Candidate ASes (rendered names); empty when no Looking Glass
        /// covered the hops.
        as_candidates: Vec<String>,
    },
    /// The AS-level hypothesis summary.
    AsSummary {
        /// Rendered names of every suspect AS.
        ases: Vec<String>,
    },
    /// Failed paths exonerating every candidate link on them.
    Unexplained {
        /// Number of unexplained failed paths.
        count: usize,
    },
}

/// One finding of a diagnosis run.
#[derive(Clone, Debug, PartialEq)]
pub struct Issue {
    /// How urgent this finding is.
    pub severity: Severity,
    /// What kind of finding it is.
    pub category: IssueCategory,
    /// Evidence strength in `[0, 1]` — for links, the fraction of
    /// observed failure/reroute sets this suspect explains (`1.0` when
    /// IGP-confirmed).
    pub confidence: f64,
    /// One-line human summary.
    pub message: String,
    /// The typed evidence.
    pub detail: IssueDetail,
}

/// Whole-run tallies (the report header, machine-readable).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct ReportCounters {
    /// Observed failed paths (= failure sets).
    pub failed_paths: usize,
    /// Observed rerouted-but-working paths (= reroute sets).
    pub rerouted_paths: usize,
    /// Distinct probed links in the inference graph.
    pub probed_links: usize,
    /// Hypothesis size (identified + unidentified suspect links).
    pub suspect_links: usize,
    /// Distinct ASes implicated by the hypothesis.
    pub suspect_ases: usize,
    /// Failed paths no candidate link explains.
    pub unexplained_failures: usize,
}

/// A structured diagnosis report: severity-ranked issues + counters.
///
/// Built by [`DiagnosticReport::from_diagnosis`] (or
/// [`NetDiagnoser::report`](crate::NetDiagnoser::report)); `Display`
/// renders the historical operator text, [`to_json`] the versioned wire
/// form.
///
/// [`to_json`]: DiagnosticReport::to_json
#[derive(Clone, Debug, PartialEq)]
pub struct DiagnosticReport {
    /// Schema version of the JSON form ([`REPORT_SCHEMA_VERSION`]).
    pub schema: u32,
    /// The algorithm that produced the diagnosis.
    pub algorithm: Algorithm,
    /// Overall severity: the maximum over all issues.
    pub severity: Severity,
    /// Overall confidence: the fraction of failed paths the hypothesis
    /// explains (`1.0` when nothing failed).
    pub confidence: f64,
    /// Whole-run tallies.
    pub counters: ReportCounters,
    /// Findings, most severe first (stable within equal severity:
    /// evidence-rank order for links, attribution order for groups).
    pub issues: Vec<Issue>,
}

impl DiagnosticReport {
    /// Builds the report for `diagnosis` under `config`.
    ///
    /// `config.min_confidence` and `config.max_issues` filter only the
    /// link/group findings (the hypothesis); the AS summary and the
    /// unexplained-failure caveat are always kept — suppressing the
    /// caveat would hide exactly the uncertainty thresholds exist to
    /// surface.
    pub fn from_diagnosis(diagnosis: &Diagnosis, config: &DiagnosticsConfig) -> Self {
        let graph = diagnosis.graph();
        let set_total = diagnosis.problem.failure_sets.len() + diagnosis.problem.reroute_sets.len();
        let counters = ReportCounters {
            failed_paths: diagnosis.problem.failure_sets.len(),
            rerouted_paths: diagnosis.problem.reroute_sets.len(),
            probed_links: graph.edge_count(),
            suspect_links: diagnosis.len(),
            suspect_ases: diagnosis.as_hypothesis().len(),
            unexplained_failures: diagnosis.unexplained_failures(),
        };

        // Identified links individually (strongest evidence first, from
        // the shared ranking); unidentified ones grouped by candidate-AS
        // attribution, exactly as the flat report always has.
        let ranked = crate::ranking::rank(diagnosis);
        let mut issues: Vec<Issue> = Vec::new();
        let mut groups: std::collections::BTreeMap<Vec<String>, (usize, f64)> = Default::default();
        for r in &ranked {
            let coverage = if set_total == 0 {
                1.0
            } else {
                (r.failure_sets_hit + r.reroute_sets_hit) as f64 / set_total as f64
            };
            if graph.is_unidentified(r.edge) {
                let ases: Vec<String> = diagnosis
                    .problem
                    .graph
                    .edge_as_set(r.edge)
                    .iter()
                    .map(|a| a.to_string())
                    .collect();
                let slot = groups.entry(ases).or_insert((0, 0.0));
                slot.0 += 1;
                slot.1 = slot.1.max(coverage);
                continue;
            }
            let data = graph.edge(r.edge);
            let (from, to) = graph.endpoints(r.edge);
            let misconfig_toward = match data.logical {
                Some(LogicalPart::First(a)) | Some(LogicalPart::Second(a)) => Some(a.to_string()),
                None => None,
            };
            let severity = if r.forced_by_igp {
                Severity::Critical
            } else {
                Severity::Error
            };
            let confidence = if r.forced_by_igp { 1.0 } else { coverage };
            let category = if misconfig_toward.is_some() {
                IssueCategory::ExportMisconfig
            } else {
                IssueCategory::LinkFailure
            };
            let (from, to) = (fmt_node(&from), fmt_node(&to));
            let mut message = format!(
                "suspect link {from} -> {to} explains {} failed / {} rerouted path(s)",
                r.failure_sets_hit, r.reroute_sets_hit
            );
            if let Some(a) = &misconfig_toward {
                let _ = write!(
                    message,
                    "; only routes toward {a} (export misconfiguration)"
                );
            }
            if r.forced_by_igp {
                message.push_str("; confirmed by IGP link-down");
            }
            issues.push(Issue {
                severity,
                category,
                confidence,
                message,
                detail: IssueDetail::Link {
                    from,
                    to,
                    failed_explained: r.failure_sets_hit,
                    rerouted_explained: r.reroute_sets_hit,
                    misconfig_toward,
                    igp_confirmed: r.forced_by_igp,
                },
            });
        }
        for (ases, (count, confidence)) in groups {
            let place = group_place(&ases);
            issues.push(Issue {
                severity: Severity::Warning,
                category: IssueCategory::UnidentifiedLinks,
                confidence,
                message: format!(
                    "{count} unidentified link(s) behind traceroute-blocking hops — {place}"
                ),
                detail: IssueDetail::UnidentifiedGroup {
                    count,
                    as_candidates: ases,
                },
            });
        }

        // Reporting thresholds apply to the hypothesis findings only.
        issues.retain(|i| i.confidence >= config.min_confidence);
        issues.sort_by_key(|issue| std::cmp::Reverse(issue.severity));
        if config.max_issues > 0 {
            issues.truncate(config.max_issues);
        }

        let ases: Vec<String> = diagnosis
            .as_hypothesis()
            .iter()
            .map(|a| a.to_string())
            .collect();
        if !ases.is_empty() {
            issues.push(Issue {
                severity: Severity::Info,
                category: IssueCategory::SuspectAses,
                confidence: 1.0,
                message: format!("suspect ASes: {}", ases.join(", ")),
                detail: IssueDetail::AsSummary { ases },
            });
        }
        if counters.unexplained_failures > 0 {
            let escalate = config.unexplained_escalation > 0
                && counters.unexplained_failures >= config.unexplained_escalation;
            issues.push(Issue {
                severity: if escalate {
                    Severity::Error
                } else {
                    Severity::Warning
                },
                category: IssueCategory::UnexplainedFailures,
                confidence: 1.0,
                message: format!(
                    "{} failed path(s) could not be explained by any candidate link",
                    counters.unexplained_failures
                ),
                detail: IssueDetail::Unexplained {
                    count: counters.unexplained_failures,
                },
            });
        }
        issues.sort_by_key(|issue| std::cmp::Reverse(issue.severity));

        let severity = issues
            .iter()
            .map(|i| i.severity)
            .max()
            .unwrap_or(Severity::Info);
        let confidence = if counters.failed_paths == 0 {
            1.0
        } else {
            1.0 - counters.unexplained_failures as f64 / counters.failed_paths as f64
        };
        DiagnosticReport {
            schema: REPORT_SCHEMA_VERSION,
            algorithm: config.algorithm,
            severity,
            confidence,
            counters,
            issues,
        }
    }

    /// Serializes to compact single-line JSON with a stable field order
    /// (embeddable in the daemon's line-delimited protocol).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512);
        let _ = write!(
            out,
            "{{\"schema\":{},\"algorithm\":\"{}\",\"severity\":\"{}\",\"confidence\":",
            self.schema, self.algorithm, self.severity
        );
        push_f64(&mut out, self.confidence);
        let c = &self.counters;
        let _ = write!(
            out,
            ",\"counters\":{{\"failed_paths\":{},\"rerouted_paths\":{},\"probed_links\":{},\
             \"suspect_links\":{},\"suspect_ases\":{},\"unexplained_failures\":{}}},\"issues\":[",
            c.failed_paths,
            c.rerouted_paths,
            c.probed_links,
            c.suspect_links,
            c.suspect_ases,
            c.unexplained_failures
        );
        for (i, issue) in self.issues.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            issue.push_json(&mut out);
        }
        out.push_str("]}");
        out
    }

    /// Parses the JSON form back into a report.
    ///
    /// Rejects documents of a different [`schema`](Self::schema) version
    /// — the caller is looking at a report this build does not
    /// understand.
    pub fn from_json(src: &str) -> Result<Self, String> {
        let doc = json::parse(src)?;
        Self::from_json_value(&doc)
    }

    /// Parses an already-decoded JSON value (e.g. a field of a larger
    /// protocol message) into a report.
    pub fn from_json_value(doc: &Json) -> Result<Self, String> {
        let schema = field_u64(doc, "schema")? as u32;
        if schema != REPORT_SCHEMA_VERSION {
            return Err(format!(
                "unsupported report schema {schema} (this build reads {REPORT_SCHEMA_VERSION})"
            ));
        }
        let algorithm = field_str(doc, "algorithm")?.parse::<Algorithm>()?;
        let severity = field_str(doc, "severity")?.parse::<Severity>()?;
        let confidence = field_f64(doc, "confidence")?;
        let c = doc
            .get("counters")
            .ok_or_else(|| "missing field \"counters\"".to_string())?;
        let counters = ReportCounters {
            failed_paths: field_u64(c, "failed_paths")? as usize,
            rerouted_paths: field_u64(c, "rerouted_paths")? as usize,
            probed_links: field_u64(c, "probed_links")? as usize,
            suspect_links: field_u64(c, "suspect_links")? as usize,
            suspect_ases: field_u64(c, "suspect_ases")? as usize,
            unexplained_failures: field_u64(c, "unexplained_failures")? as usize,
        };
        let issues = doc
            .get("issues")
            .and_then(Json::as_array)
            .ok_or_else(|| "missing array \"issues\"".to_string())?
            .iter()
            .map(Issue::from_json_value)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(DiagnosticReport {
            schema,
            algorithm,
            severity,
            confidence,
            counters,
            issues,
        })
    }
}

impl Issue {
    fn push_json(&self, out: &mut String) {
        let _ = write!(
            out,
            "{{\"severity\":\"{}\",\"category\":\"{}\",\"confidence\":",
            self.severity,
            self.category.as_str()
        );
        push_f64(out, self.confidence);
        out.push_str(",\"message\":");
        push_json_string(out, &self.message);
        match &self.detail {
            IssueDetail::Link {
                from,
                to,
                failed_explained,
                rerouted_explained,
                misconfig_toward,
                igp_confirmed,
            } => {
                out.push_str(",\"link\":{\"from\":");
                push_json_string(out, from);
                out.push_str(",\"to\":");
                push_json_string(out, to);
                let _ = write!(
                    out,
                    ",\"failed_explained\":{failed_explained},\
                     \"rerouted_explained\":{rerouted_explained},\"misconfig_toward\":"
                );
                match misconfig_toward {
                    Some(a) => push_json_string(out, a),
                    None => out.push_str("null"),
                }
                let _ = write!(out, ",\"igp_confirmed\":{igp_confirmed}}}");
            }
            IssueDetail::UnidentifiedGroup {
                count,
                as_candidates,
            } => {
                let _ = write!(
                    out,
                    ",\"unidentified\":{{\"count\":{count},\"as_candidates\":["
                );
                for (i, a) in as_candidates.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    push_json_string(out, a);
                }
                out.push_str("]}");
            }
            IssueDetail::AsSummary { ases } => {
                out.push_str(",\"ases\":[");
                for (i, a) in ases.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    push_json_string(out, a);
                }
                out.push(']');
            }
            IssueDetail::Unexplained { count } => {
                let _ = write!(out, ",\"unexplained\":{{\"count\":{count}}}");
            }
        }
        out.push('}');
    }

    fn from_json_value(doc: &Json) -> Result<Self, String> {
        let severity = field_str(doc, "severity")?.parse::<Severity>()?;
        let category = field_str(doc, "category")?.parse::<IssueCategory>()?;
        let confidence = field_f64(doc, "confidence")?;
        let message = field_str(doc, "message")?.to_owned();
        let detail = if let Some(l) = doc.get("link") {
            IssueDetail::Link {
                from: field_str(l, "from")?.to_owned(),
                to: field_str(l, "to")?.to_owned(),
                failed_explained: field_u64(l, "failed_explained")? as usize,
                rerouted_explained: field_u64(l, "rerouted_explained")? as usize,
                misconfig_toward: match l.get("misconfig_toward") {
                    None => return Err("missing field \"misconfig_toward\"".to_string()),
                    Some(Json::Null) => None,
                    Some(v) => Some(
                        v.as_str()
                            .ok_or_else(|| "\"misconfig_toward\" is not a string".to_string())?
                            .to_owned(),
                    ),
                },
                igp_confirmed: match l.get("igp_confirmed") {
                    Some(Json::Bool(b)) => *b,
                    _ => return Err("missing bool \"igp_confirmed\"".to_string()),
                },
            }
        } else if let Some(u) = doc.get("unidentified") {
            IssueDetail::UnidentifiedGroup {
                count: field_u64(u, "count")? as usize,
                as_candidates: string_array(u, "as_candidates")?,
            }
        } else if doc.get("ases").is_some() {
            IssueDetail::AsSummary {
                ases: string_array(doc, "ases")?,
            }
        } else if let Some(u) = doc.get("unexplained") {
            IssueDetail::Unexplained {
                count: field_u64(u, "count")? as usize,
            }
        } else {
            return Err("issue carries no detail object".to_string());
        };
        Ok(Issue {
            severity,
            category,
            confidence,
            message,
            detail,
        })
    }
}

impl fmt::Display for DiagnosticReport {
    /// The historical operator-facing flat-text report, reproduced
    /// byte-for-byte from the typed issues (for a default-threshold
    /// report; filtered reports render their filtered contents).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "=== NetDiagnoser report ===")?;
        writeln!(
            f,
            "observed: {} failed path(s), {} rerouted path(s), {} probed link(s)",
            self.counters.failed_paths, self.counters.rerouted_paths, self.counters.probed_links,
        )?;
        if self.counters.suspect_links == 0 {
            return writeln!(f, "no suspect links (nothing to explain)");
        }

        writeln!(f, "\nsuspect links ({}):", self.counters.suspect_links)?;
        for issue in &self.issues {
            let IssueDetail::Link {
                from,
                to,
                failed_explained,
                rerouted_explained,
                misconfig_toward,
                igp_confirmed,
            } = &issue.detail
            else {
                continue;
            };
            write!(
                f,
                "  {from} -> {to}  [explains {failed_explained} failed / \
                 {rerouted_explained} rerouted path(s)]"
            )?;
            if let Some(a) = misconfig_toward {
                write!(
                    f,
                    "  (only for routes toward {a}: likely a BGP export misconfiguration)"
                )?;
            }
            if *igp_confirmed {
                write!(f, "  [confirmed by IGP link-down]")?;
            }
            writeln!(f)?;
        }
        for issue in &self.issues {
            let IssueDetail::UnidentifiedGroup {
                count,
                as_candidates,
            } = &issue.detail
            else {
                continue;
            };
            let place = group_place(as_candidates);
            writeln!(
                f,
                "  {count} unidentified link(s) behind traceroute-blocking hops — {place}"
            )?;
        }

        for issue in &self.issues {
            if let IssueDetail::AsSummary { ases } = &issue.detail {
                writeln!(f, "\nsuspect ASes: {}", ases.join(", "))?;
            }
        }
        if self.counters.unexplained_failures > 0 {
            writeln!(
                f,
                "\nwarning: {} failed path(s) could not be explained by any \
                 candidate link (evidence exonerates every link on them)",
                self.counters.unexplained_failures
            )?;
        }
        Ok(())
    }
}

/// Renders a diagnosis as the operator-facing text report.
///
/// Compatibility wrapper: equivalent to building a default-config
/// [`DiagnosticReport`] and formatting it — identical output to every
/// previous release.
pub fn render(diagnosis: &Diagnosis) -> String {
    DiagnosticReport::from_diagnosis(diagnosis, &DiagnosticsConfig::default()).to_string()
}

/// The attribution phrase of an unidentified-link group.
fn group_place(ases: &[String]) -> String {
    if ases.is_empty() {
        "unmapped ASes (no Looking Glass coverage)".to_string()
    } else {
        format!("AS candidates {{{}}}", ases.join(", "))
    }
}

fn fmt_node(node: &crate::graph::HopNode) -> String {
    match node {
        crate::graph::HopNode::Ip(a) => a.to_string(),
        crate::graph::HopNode::Uh(path, pos) => format!(
            "unidentified-hop({:?}#{} pos {pos})",
            path.epoch, path.index
        ),
    }
}

/// Appends `v` as a JSON number. Confidences are finite by construction;
/// a non-finite value (impossible via the public constructors) serializes
/// as `null` rather than emitting invalid JSON.
fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// Appends `s` as a JSON string literal (quotes + escapes).
fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn field_str<'a>(doc: &'a Json, key: &str) -> Result<&'a str, String> {
    doc.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("missing string field {key:?}"))
}

fn field_u64(doc: &Json, key: &str) -> Result<u64, String> {
    doc.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing integer field {key:?}"))
}

fn field_f64(doc: &Json, key: &str) -> Result<f64, String> {
    match doc.get(key) {
        Some(Json::Num(n)) => Ok(*n),
        _ => Err(format!("missing number field {key:?}")),
    }
}

fn string_array(doc: &Json, key: &str) -> Result<Vec<String>, String> {
    doc.get(key)
        .and_then(Json::as_array)
        .ok_or_else(|| format!("missing array field {key:?}"))?
        .iter()
        .map(|v| {
            v.as_str()
                .map(str::to_owned)
                .ok_or_else(|| format!("non-string element in {key:?}"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observation::{Hop, IpToAsFn, Observations, ProbePath, SensorMeta, Snapshot};
    use netdiag_topology::{AsId, SensorId};
    use std::net::Ipv4Addr;

    fn obs() -> Observations {
        let a = |x: u8, y: u8| Ipv4Addr::new(10, x, 0, y);
        Observations {
            sensors: vec![
                SensorMeta {
                    id: SensorId(0),
                    addr: a(1, 200),
                    as_id: AsId(1),
                },
                SensorMeta {
                    id: SensorId(1),
                    addr: a(2, 200),
                    as_id: AsId(2),
                },
            ],
            before: Snapshot {
                paths: vec![ProbePath {
                    src: SensorId(0),
                    dst: SensorId(1),
                    hops: vec![Hop::Addr(a(1, 1)), Hop::Addr(a(2, 1)), Hop::Addr(a(2, 200))],
                    reached: true,
                }],
            },
            after: Snapshot {
                paths: vec![ProbePath {
                    src: SensorId(0),
                    dst: SensorId(1),
                    hops: vec![Hop::Addr(a(1, 1))],
                    reached: false,
                }],
            },
        }
    }

    fn ip2as() -> IpToAsFn<impl Fn(Ipv4Addr) -> Option<AsId>> {
        IpToAsFn(|addr: Ipv4Addr| Some(AsId(u32::from(addr.octets()[1]))))
    }

    #[test]
    fn report_lists_suspects_and_ases() {
        let d = crate::algorithms::tomo(&obs(), &ip2as());
        let text = render(&d);
        assert!(text.contains("suspect links"));
        assert!(text.contains("suspect ASes"));
        assert!(text.contains("10.2.0.1"));
    }

    #[test]
    fn empty_diagnosis_reports_nothing_to_explain() {
        let mut o = obs();
        o.after = o.before.clone(); // nothing failed
        let d = crate::algorithms::tomo(&o, &ip2as());
        let text = render(&d);
        assert!(text.contains("no suspect links"));
    }

    #[test]
    fn issues_are_severity_ranked() {
        let d =
            crate::algorithms::nd_edge(&obs(), &ip2as(), crate::hitting_set::Weights::default());
        let report = DiagnosticReport::from_diagnosis(&d, &DiagnosticsConfig::default());
        assert!(!report.issues.is_empty());
        assert!(report
            .issues
            .windows(2)
            .all(|w| w[0].severity >= w[1].severity));
        let max = report
            .issues
            .iter()
            .map(|i| i.severity)
            .max()
            .expect("non-empty issue list has a maximum severity");
        assert_eq!(report.severity, max);
    }

    #[test]
    fn counters_mirror_the_diagnosis() {
        let d = crate::algorithms::tomo(&obs(), &ip2as());
        let report = DiagnosticReport::from_diagnosis(&d, &DiagnosticsConfig::default());
        assert_eq!(report.counters.suspect_links, d.len());
        assert_eq!(report.counters.failed_paths, d.problem.failure_sets.len());
        assert_eq!(
            report.counters.unexplained_failures,
            d.unexplained_failures()
        );
        assert_eq!(report.counters.suspect_ases, d.as_hypothesis().len());
    }

    #[test]
    fn max_issues_caps_hypothesis_findings_but_keeps_the_summary() {
        let d = crate::algorithms::tomo(&obs(), &ip2as());
        let cfg = DiagnosticsConfig {
            max_issues: 1,
            ..Default::default()
        };
        let report = DiagnosticReport::from_diagnosis(&d, &cfg);
        let links = report
            .issues
            .iter()
            .filter(|i| matches!(i.detail, IssueDetail::Link { .. }))
            .count();
        assert_eq!(links, 1);
        assert!(report
            .issues
            .iter()
            .any(|i| i.category == IssueCategory::SuspectAses));
    }

    #[test]
    fn min_confidence_drops_weak_findings() {
        let d = crate::algorithms::tomo(&obs(), &ip2as());
        let cfg = DiagnosticsConfig {
            min_confidence: 1.1, // nothing reaches it
            ..Default::default()
        };
        let report = DiagnosticReport::from_diagnosis(&d, &cfg);
        assert!(report
            .issues
            .iter()
            .all(|i| !matches!(i.detail, IssueDetail::Link { .. })));
    }

    #[test]
    fn json_round_trips() {
        let d = crate::algorithms::tomo(&obs(), &ip2as());
        let report = DiagnosticReport::from_diagnosis(&d, &DiagnosticsConfig::default());
        let parsed = DiagnosticReport::from_json(&report.to_json()).expect("own JSON parses");
        assert_eq!(parsed, report);
    }

    #[test]
    fn other_schema_versions_are_rejected() {
        let d = crate::algorithms::tomo(&obs(), &ip2as());
        let json = DiagnosticReport::from_diagnosis(&d, &DiagnosticsConfig::default())
            .to_json()
            .replace("\"schema\":1", "\"schema\":99");
        let err = DiagnosticReport::from_json(&json).unwrap_err();
        assert!(err.contains("schema 99"), "{err}");
    }
}
