//! Building the Boolean-tomography problem from probe observations.
//!
//! A [`Problem`] holds the inferred graph plus the failure sets, reroute
//! sets, working-path constraints and candidate set defined in §2.3–§3.2 of
//! the paper, and can be refined with AS-X's control-plane feed (§3.3).

use std::collections::{BTreeMap, BTreeSet, HashMap};

use netdiag_topology::SensorId;

use crate::bitset::EdgeBitSet;
use crate::graph::{DiagGraph, Epoch, HopNode, PathRef, PhysId};
use crate::hitting_set::HittingSetInstance;
use crate::observation::{Hop, IpToAs, Observations, RoutingFeed};

/// A failure or reroute set attached to its sensor pair.
#[derive(Clone, Debug)]
pub struct PathSet {
    /// Probing sensor.
    pub src: SensorId,
    /// Target sensor.
    pub dst: SensorId,
    /// Index of the underlying path in the *before* snapshot.
    pub before_index: usize,
    /// The edges of the set.
    pub edges: EdgeBitSet,
}

/// How to construct the problem (which paper features to enable).
#[derive(Clone, Copy, Debug)]
pub struct BuildOptions {
    /// Expand inter-domain links into logical half-links (§3.1).
    pub logical: bool,
    /// Use the post-failure snapshot: working constraints from `T+` paths
    /// and reroute sets (§3.2). Plain Tomo leaves this off.
    pub use_after: bool,
    /// Drop unidentified (star-adjacent) links from the candidate set —
    /// what the paper's ND-bgpigp does when ASes block traceroute (§5.4).
    /// ND-LG keeps them and maps them to ASes instead.
    pub ignore_unidentified: bool,
}

impl BuildOptions {
    /// Plain multi-AS Boolean tomography (the paper's Tomo).
    pub fn tomo() -> Self {
        BuildOptions {
            logical: false,
            use_after: false,
            ignore_unidentified: true,
        }
    }

    /// Logical links + reroute information (the paper's ND-edge).
    pub fn nd_edge() -> Self {
        BuildOptions {
            logical: true,
            use_after: true,
            ignore_unidentified: true,
        }
    }

    /// ND-edge, but keeping unidentified links as candidates (ND-LG).
    pub fn nd_lg() -> Self {
        BuildOptions {
            ignore_unidentified: false,
            ..Self::nd_edge()
        }
    }
}

/// A fully-constructed tomography problem.
#[derive(Clone, Debug)]
pub struct Problem {
    /// The inferred graph (union of observed paths).
    pub graph: DiagGraph,
    /// One set per failed sensor pair: the edges of its pre-failure path.
    pub failure_sets: Vec<PathSet>,
    /// One set per rerouted-but-working pair: old-path edges absent from
    /// the new path.
    pub reroute_sets: Vec<PathSet>,
    /// Edges proven up by working paths.
    pub working_edges: EdgeBitSet,
    /// Candidate edges for the hypothesis.
    pub candidates: EdgeBitSet,
    /// Edge sequence of every before-snapshot path (aligned with
    /// `Observations::before.paths`).
    pub before_edges: Vec<Vec<crate::graph::EdgeId>>,
    /// Edge sequence of every after-snapshot path (empty unless
    /// `use_after`).
    pub after_edges: Vec<Vec<crate::graph::EdgeId>>,
    /// Edges forced into the hypothesis by IGP link-down events (§3.3).
    pub forced: Vec<crate::graph::EdgeId>,
}

impl Problem {
    /// Builds the problem from observations.
    pub fn build(obs: &Observations, ip2as: &dyn IpToAs, opts: BuildOptions) -> Problem {
        Self::build_recorded(obs, ip2as, opts, &netdiag_obs::RecorderHandle::noop())
    }

    /// [`build`](Self::build), additionally emitting one
    /// [`EV_DIAG_REROUTE_SET`](netdiag_obs::names::EV_DIAG_REROUTE_SET)
    /// trace event per constructed reroute set.
    pub fn build_recorded(
        obs: &Observations,
        ip2as: &dyn IpToAs,
        opts: BuildOptions,
        recorder: &netdiag_obs::RecorderHandle,
    ) -> Problem {
        let mut graph = DiagGraph::new();

        // Expand the before-snapshot paths.
        let before_edges: Vec<Vec<crate::graph::EdgeId>> = obs
            .before
            .paths
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let dst_as = obs.sensor(p.dst).as_id;
                graph.expand_path(
                    p,
                    PathRef {
                        epoch: Epoch::Before,
                        index: i,
                    },
                    dst_as,
                    ip2as,
                    opts.logical,
                )
            })
            .collect();

        // Expand the after-snapshot paths when requested.
        let after_edges: Vec<Vec<crate::graph::EdgeId>> = if opts.use_after {
            obs.after
                .paths
                .iter()
                .enumerate()
                .map(|(i, p)| {
                    let dst_as = obs.sensor(p.dst).as_id;
                    graph.expand_path(
                        p,
                        PathRef {
                            epoch: Epoch::After,
                            index: i,
                        },
                        dst_as,
                        ip2as,
                        opts.logical,
                    )
                })
                .collect()
        } else {
            Vec::new()
        };

        // Post-failure reachability per pair.
        let reached_after: HashMap<(SensorId, SensorId), bool> = obs
            .after
            .paths
            .iter()
            .map(|p| ((p.src, p.dst), p.reached))
            .collect();

        // Failure sets: pairs healthy at T- and broken at T+; the set is
        // the pre-failure path's edges.
        let mut failure_sets = Vec::new();
        for (i, p) in obs.before.paths.iter().enumerate() {
            if !p.reached {
                continue; // the pair was already broken before the event
            }
            if reached_after.get(&(p.src, p.dst)) == Some(&false) {
                failure_sets.push(PathSet {
                    src: p.src,
                    dst: p.dst,
                    before_index: i,
                    edges: before_edges[i].iter().copied().collect(),
                });
            }
        }

        // Working constraints.
        let mut working_edges = EdgeBitSet::new();
        if opts.use_after {
            // Post-failure working paths prove their (new) edges up.
            for (j, p) in obs.after.paths.iter().enumerate() {
                if p.reached {
                    working_edges.extend(after_edges[j].iter().copied());
                }
            }
        } else {
            // Plain Tomo never re-probes: it treats the *stale* pre-failure
            // paths of still-reachable pairs as proof their links are up —
            // exactly the limitation §2.5(2) describes.
            for (i, p) in obs.before.paths.iter().enumerate() {
                if p.reached && reached_after.get(&(p.src, p.dst)) == Some(&true) {
                    working_edges.extend(before_edges[i].iter().copied());
                }
            }
        }

        // Reroute sets: pairs working at both instants whose path changed;
        // the set is the old edges whose physical identity vanished from
        // the new path.
        let mut reroute_sets = Vec::new();
        if opts.use_after {
            for (j, p) in obs.after.paths.iter().enumerate() {
                if !p.reached {
                    continue;
                }
                let Some(i) = obs
                    .before
                    .paths
                    .iter()
                    .position(|bp| bp.src == p.src && bp.dst == p.dst && bp.reached)
                else {
                    continue;
                };
                // Compare *identified* edges only: an unidentified hop is
                // a fresh node on every path, so including UH edges would
                // make every unchanged path through a blocked AS look
                // rerouted.
                let new_phys: BTreeSet<PhysId> = after_edges[j]
                    .iter()
                    .map(|&e| graph.edge(e).phys())
                    .collect();
                let removed: EdgeBitSet = before_edges[i]
                    .iter()
                    .copied()
                    .filter(|&e| {
                        !graph.is_unidentified(e) && !new_phys.contains(&graph.edge(e).phys())
                    })
                    .collect();
                if !removed.is_empty() {
                    reroute_sets.push(PathSet {
                        src: p.src,
                        dst: p.dst,
                        before_index: i,
                        edges: removed,
                    });
                }
            }
        }

        // Candidate set: everything implicated, minus proven-up edges,
        // minus (optionally) unidentified links.
        let mut candidates: EdgeBitSet = failure_sets
            .iter()
            .flat_map(|s| s.edges.iter())
            .chain(reroute_sets.iter().flat_map(|s| s.edges.iter()))
            .collect();
        candidates.retain(|e| !working_edges.contains(e));
        if opts.ignore_unidentified {
            candidates.retain(|e| !graph.is_unidentified(e));
        }

        if recorder.trace_enabled() {
            for set in &reroute_sets {
                recorder.event(netdiag_obs::names::EV_DIAG_REROUTE_SET, || {
                    let excluded: Vec<netdiag_obs::Value> = set
                        .edges
                        .iter()
                        .map(|e| graph.edge_label(e).into())
                        .collect();
                    netdiag_obs::EventPayload::new()
                        .field("src", set.src.index())
                        .field("dst", set.dst.index())
                        .field("excluded", excluded)
                });
            }
        }

        Problem {
            graph,
            failure_sets,
            reroute_sets,
            working_edges,
            candidates,
            before_edges,
            after_edges,
            forced: Vec::new(),
        }
    }

    /// Applies AS-X's control-plane feed (§3.3):
    ///
    /// * every IGP link-down event whose interfaces appear in the graph
    ///   forces the matching edges straight into the hypothesis and marks
    ///   the sets they hit as explained;
    /// * every BGP withdrawal received from neighbor `n` for the prefix of
    ///   a failed destination exonerates, on that destination's failed
    ///   path, every edge up to and including the hop where `n` answered —
    ///   the failure must lie strictly downstream of `n`.
    pub fn apply_feed(&mut self, obs: &Observations, feed: &RoutingFeed) {
        self.apply_feed_recorded(obs, feed, &netdiag_obs::RecorderHandle::noop());
    }

    /// [`apply_feed`](Self::apply_feed), additionally counting forced and
    /// exonerated edges on `recorder`.
    pub fn apply_feed_recorded(
        &mut self,
        obs: &Observations,
        feed: &RoutingFeed,
        recorder: &netdiag_obs::RecorderHandle,
    ) {
        let forced_before = self.forced.len() as u64;
        let mut exonerated: u64 = 0;
        // IGP link-down: edges terminating at either interface of the
        // failed link are that link.
        for ev in &feed.igp_link_down {
            let mut hit: Vec<crate::graph::EdgeId> = self
                .graph
                .edges()
                .filter(|(_, d)| {
                    matches!(self.graph.node(d.to).key,
                        HopNode::Ip(a) if a == ev.addr_a || a == ev.addr_b)
                })
                .map(|(id, _)| id)
                .collect();
            hit.retain(|e| !self.forced.contains(e));
            for e in hit {
                recorder.event(netdiag_obs::names::EV_FEED_FORCED, || {
                    netdiag_obs::EventPayload::new()
                        .field("edge", e.index())
                        .field("label", self.graph.edge_label(e))
                        .field("addr_a", ev.addr_a.to_string())
                        .field("addr_b", ev.addr_b.to_string())
                });
                self.forced.push(e);
            }
        }
        if !self.forced.is_empty() {
            let forced = self.forced.clone();
            self.failure_sets
                .retain(|s| !forced.iter().any(|&e| s.edges.contains(e)));
            self.reroute_sets
                .retain(|s| !forced.iter().any(|&e| s.edges.contains(e)));
            for &e in &forced {
                self.candidates.remove(e);
            }
        }

        // BGP withdrawals: prune upstream edges from each matching failure
        // set.
        for set in &mut self.failure_sets {
            let dst_addr = obs.sensor(set.dst).addr;
            let path = &obs.before.paths[set.before_index];
            let edges = &self.before_edges[set.before_index];
            for w in &feed.withdrawals {
                if !w.prefix.contains(dst_addr) {
                    continue;
                }
                // Find the hop where the withdrawing neighbor answered.
                let hit = path
                    .hops
                    .iter()
                    .any(|h| matches!(h, Hop::Addr(a) if *a == w.from_addr));
                if !hit {
                    continue;
                }
                // Prune every edge up to and including the last edge into
                // that address (logical halves share the target node).
                let last = edges.iter().rposition(|&e| {
                    let d = self.graph.edge(e);
                    matches!(self.graph.node(d.to).key,
                        HopNode::Ip(a) if a == w.from_addr)
                });
                if let Some(last) = last {
                    for &e in &edges[..=last] {
                        // The withdrawal itself arrived over the link into
                        // the neighbor, so that link is physically up — but
                        // a *logical* (per-neighbor) variant of it may be
                        // the very misconfigured announcement that caused
                        // this withdrawal. Keep logical variants of the
                        // into-neighbor edge as candidates.
                        let d = self.graph.edge(e);
                        let into_neighbor = matches!(
                            self.graph.node(d.to).key,
                            HopNode::Ip(a) if a == w.from_addr
                        );
                        if into_neighbor && d.logical.is_some() {
                            continue;
                        }
                        if set.edges.remove(e) {
                            exonerated += 1;
                            recorder.event(netdiag_obs::names::EV_FEED_EXONERATED, || {
                                netdiag_obs::EventPayload::new()
                                    .field("edge", e.index())
                                    .field("label", self.graph.edge_label(e))
                                    .field("neighbor", w.from_addr.to_string())
                                    .field("prefix", w.prefix.to_string())
                            });
                        }
                    }
                }
            }
        }
        // Candidates implicated by nothing anymore can be dropped.
        let still_implicated: EdgeBitSet = self
            .failure_sets
            .iter()
            .flat_map(|s| s.edges.iter())
            .chain(self.reroute_sets.iter().flat_map(|s| s.edges.iter()))
            .collect();
        self.candidates.retain(|e| still_implicated.contains(e));

        if recorder.enabled() {
            use netdiag_obs::names;
            recorder.add(
                names::FEED_FORCED_EDGES,
                self.forced.len() as u64 - forced_before,
            );
            recorder.add(names::FEED_EXONERATED_EDGES, exonerated);
        }
    }

    /// Converts to a hitting-set instance (clusters empty; ND-LG adds them).
    pub fn instance(&self) -> HittingSetInstance {
        HittingSetInstance {
            failure_sets: self.failure_sets.iter().map(|s| s.edges.clone()).collect(),
            reroute_sets: self.reroute_sets.iter().map(|s| s.edges.clone()).collect(),
            candidates: self.candidates.clone(),
            clusters: BTreeMap::new(),
        }
    }
}
