//! The four diagnosis algorithms of the paper: Tomo, ND-edge, ND-bgpigp
//! and ND-LG.

use std::collections::{BTreeMap, BTreeSet};

use netdiag_obs::{names, RecorderHandle};
use netdiag_topology::AsId;

use crate::diagnosis::Diagnosis;
use crate::graph::{EdgeId, Epoch, HopNode, PathRef};
use crate::hitting_set::Weights;
use crate::observation::{Hop, IpToAs, LookingGlass, Observations, ProbePath, RoutingFeed};
use crate::problem::{BuildOptions, Problem};

/// **Tomo** (§2.4): multi-source multi-destination Boolean tomography on
/// the pre-failure graph — the greedy minimum-hitting-set heuristic of
/// Algorithm 1. Uses only the pre-failure paths plus the post-failure
/// reachability matrix; no logical links, no reroute information.
pub fn tomo(obs: &Observations, ip2as: &dyn IpToAs) -> Diagnosis {
    tomo_recorded(obs, ip2as, &RecorderHandle::noop())
}

/// [`tomo`] reporting diagnosis counters to `recorder`.
pub fn tomo_recorded(
    obs: &Observations,
    ip2as: &dyn IpToAs,
    recorder: &RecorderHandle,
) -> Diagnosis {
    recorder.event(names::EV_DIAG_START, || {
        netdiag_obs::EventPayload::new().field("algorithm", "tomo")
    });
    let problem = Problem::build_recorded(obs, ip2as, BuildOptions::tomo(), recorder);
    trace_problem(&problem, recorder);
    let greedy = problem
        .instance()
        .greedy_recorded(Weights { a: 1, b: 0 }, recorder);
    finish(Diagnosis::new(problem, greedy), "tomo", recorder)
}

/// **ND-edge** (§3.1–§3.2): Tomo plus logical links (per-neighbor
/// inter-domain link splitting, catching router misconfigurations) and
/// reroute sets mined from the post-failure paths.
pub fn nd_edge(obs: &Observations, ip2as: &dyn IpToAs, weights: Weights) -> Diagnosis {
    nd_edge_recorded(obs, ip2as, weights, &RecorderHandle::noop())
}

/// [`nd_edge`] reporting diagnosis counters to `recorder`.
pub fn nd_edge_recorded(
    obs: &Observations,
    ip2as: &dyn IpToAs,
    weights: Weights,
    recorder: &RecorderHandle,
) -> Diagnosis {
    recorder.event(names::EV_DIAG_START, || {
        netdiag_obs::EventPayload::new().field("algorithm", "nd-edge")
    });
    let problem = Problem::build_recorded(obs, ip2as, BuildOptions::nd_edge(), recorder);
    trace_problem(&problem, recorder);
    let greedy = problem.instance().greedy_recorded(weights, recorder);
    finish(Diagnosis::new(problem, greedy), "nd-edge", recorder)
}

/// **ND-bgpigp** (§3.3): ND-edge refined with AS-X's control plane — IGP
/// link-down events force edges into the hypothesis; BGP withdrawals
/// exonerate upstream links on failed paths.
pub fn nd_bgpigp(
    obs: &Observations,
    ip2as: &dyn IpToAs,
    feed: &RoutingFeed,
    weights: Weights,
) -> Diagnosis {
    nd_bgpigp_recorded(obs, ip2as, feed, weights, &RecorderHandle::noop())
}

/// [`nd_bgpigp`] reporting diagnosis and feed counters to `recorder`.
pub fn nd_bgpigp_recorded(
    obs: &Observations,
    ip2as: &dyn IpToAs,
    feed: &RoutingFeed,
    weights: Weights,
    recorder: &RecorderHandle,
) -> Diagnosis {
    recorder.event(names::EV_DIAG_START, || {
        netdiag_obs::EventPayload::new().field("algorithm", "nd-bgpigp")
    });
    let mut problem = Problem::build_recorded(obs, ip2as, BuildOptions::nd_edge(), recorder);
    problem.apply_feed_recorded(obs, feed, recorder);
    trace_problem(&problem, recorder);
    let greedy = problem.instance().greedy_recorded(weights, recorder);
    finish(Diagnosis::new(problem, greedy), "nd-bgpigp", recorder)
}

/// **ND-LG** (§3.4): ND-bgpigp extended to handle blocked traceroutes.
/// Unidentified hops are mapped to candidate ASes via Looking Glass
/// AS-path queries; unidentified links that may be the same physical link
/// are clustered so one pick explains all of their path failures.
pub fn nd_lg(
    obs: &Observations,
    ip2as: &dyn IpToAs,
    feed: &RoutingFeed,
    lg: &dyn LookingGlass,
    weights: Weights,
) -> Diagnosis {
    nd_lg_recorded(obs, ip2as, feed, lg, weights, &RecorderHandle::noop())
}

/// [`nd_lg`] reporting diagnosis and feed counters to `recorder`.
pub fn nd_lg_recorded(
    obs: &Observations,
    ip2as: &dyn IpToAs,
    feed: &RoutingFeed,
    lg: &dyn LookingGlass,
    weights: Weights,
    recorder: &RecorderHandle,
) -> Diagnosis {
    recorder.event(names::EV_DIAG_START, || {
        netdiag_obs::EventPayload::new().field("algorithm", "nd-lg")
    });
    let mut problem = Problem::build_recorded(obs, ip2as, BuildOptions::nd_lg(), recorder);
    tag_unidentified_hops(&mut problem, obs, ip2as, lg);
    problem.apply_feed_recorded(obs, feed, recorder);
    trace_problem(&problem, recorder);
    let mut instance = problem.instance();
    instance.clusters = build_clusters(&problem);
    let greedy = instance.greedy_recorded(weights, recorder);
    finish(Diagnosis::new(problem, greedy), "nd-lg", recorder)
}

/// Emits the problem-shape trace event after construction (and feed
/// refinement, where applicable): set counts, sensor-pair names, and an
/// id→label table for every edge later events may reference.
fn trace_problem(problem: &Problem, recorder: &RecorderHandle) {
    recorder.event(names::EV_DIAG_PROBLEM, || {
        let pair = |s: &crate::problem::PathSet| -> netdiag_obs::Value {
            format!("s{}->s{}", s.src.index(), s.dst.index()).into()
        };
        let failure_pairs: Vec<netdiag_obs::Value> =
            problem.failure_sets.iter().map(pair).collect();
        let reroute_pairs: Vec<netdiag_obs::Value> =
            problem.reroute_sets.iter().map(pair).collect();
        let mut referenced: BTreeSet<EdgeId> = problem.candidates.iter().collect();
        referenced.extend(problem.forced.iter().copied());
        for s in problem
            .failure_sets
            .iter()
            .chain(problem.reroute_sets.iter())
        {
            referenced.extend(s.edges.iter());
        }
        let edge_labels: Vec<netdiag_obs::Value> = referenced
            .iter()
            .map(|&e| {
                netdiag_obs::Value::List(vec![e.index().into(), problem.graph.edge_label(e).into()])
            })
            .collect();
        netdiag_obs::EventPayload::new()
            .field("edges", problem.graph.edge_count())
            .field("candidates", problem.candidates.len())
            .field("failures", problem.failure_sets.len())
            .field("reroutes", problem.reroute_sets.len())
            .field("failure_pairs", failure_pairs)
            .field("reroute_pairs", reroute_pairs)
            .field("edge_labels", edge_labels)
    });
}

/// Records the per-diagnosis counters once a hypothesis exists.
fn finish(diagnosis: Diagnosis, algorithm: &'static str, recorder: &RecorderHandle) -> Diagnosis {
    if recorder.enabled() {
        recorder.add(names::DIAG_RUNS, 1);
        recorder.observe(names::DIAG_HYPOTHESIS_SIZE, diagnosis.len() as u64);
    }
    recorder.event(names::EV_DIAG_DONE, || {
        let ids: Vec<netdiag_obs::Value> = diagnosis
            .hypothesis
            .iter()
            .map(|&e| e.index().into())
            .collect();
        let labels: Vec<netdiag_obs::Value> = diagnosis
            .hypothesis
            .iter()
            .map(|&e| diagnosis.problem.graph.edge_label(e).into())
            .collect();
        let forced: Vec<netdiag_obs::Value> = diagnosis
            .problem
            .forced
            .iter()
            .map(|&e| e.index().into())
            .collect();
        let unexplained: Vec<netdiag_obs::Value> = diagnosis
            .greedy
            .unexplained_failures
            .iter()
            .map(|&i| i.into())
            .collect();
        netdiag_obs::EventPayload::new()
            .field("algorithm", algorithm)
            .field("hypothesis", ids)
            .field("labels", labels)
            .field("forced", forced)
            .field("unexplained_failures", unexplained)
    });
    diagnosis
}

/// Maps every unidentified hop to a candidate-AS tag using Looking Glass
/// AS paths (first step of ND-LG).
fn tag_unidentified_hops(
    problem: &mut Problem,
    obs: &Observations,
    ip2as: &dyn IpToAs,
    lg: &dyn LookingGlass,
) {
    let epochs: [(Epoch, &[ProbePath]); 2] = [
        (Epoch::Before, &obs.before.paths),
        (Epoch::After, &obs.after.paths),
    ];
    for (epoch, paths) in epochs {
        if epoch == Epoch::After && problem.after_edges.is_empty() {
            continue; // after-snapshot not part of the graph
        }
        for (index, path) in paths.iter().enumerate() {
            if !path.hops.iter().any(|h| matches!(h, Hop::Star)) {
                continue;
            }
            let path_ref = PathRef { epoch, index };
            tag_path(problem, obs, ip2as, lg, path, path_ref);
        }
    }
}

/// Tags the star runs of one path.
fn tag_path(
    problem: &mut Problem,
    obs: &Observations,
    ip2as: &dyn IpToAs,
    lg: &dyn LookingGlass,
    path: &ProbePath,
    path_ref: PathRef,
) {
    let src_as = obs.sensor(path.src).as_id;
    let dst_addr = obs.sensor(path.dst).addr;
    let hop_as: Vec<Option<AsId>> = path
        .hops
        .iter()
        .map(|h| match h {
            Hop::Addr(a) => ip2as.as_of(*a),
            Hop::Star => None,
        })
        .collect();

    // Query the source AS's Looking Glass, else the first available one
    // along the path (§3.4).
    let mut lg_path = lg.as_path(src_as, dst_addr);
    if lg_path.is_none() {
        let mut tried = BTreeSet::from([src_as]);
        for a in hop_as.iter().flatten() {
            if tried.insert(*a) {
                lg_path = lg.as_path(*a, dst_addr);
                if lg_path.is_some() {
                    break;
                }
            }
        }
    }
    // Without any Looking Glass the unidentified hops cannot be mapped at
    // all — they could belong to any AS between the flanks.
    if lg_path.is_none() {
        return;
    }

    // Walk maximal star runs.
    let mut i = 0;
    while i < path.hops.len() {
        if !matches!(path.hops[i], Hop::Star) {
            i += 1;
            continue;
        }
        let start = i;
        while i < path.hops.len() && matches!(path.hops[i], Hop::Star) {
            i += 1;
        }
        let end = i; // run = [start, end)
        let a_prev = hop_as[..start]
            .iter()
            .rev()
            .flatten()
            .next()
            .copied()
            .unwrap_or(src_as);
        let a_next = hop_as[end..].iter().flatten().next().copied();
        let tag = derive_tag(lg_path.as_deref(), a_prev, a_next);
        if tag.is_empty() {
            continue;
        }
        for pos in start..end {
            if let Some(node) = problem.graph.node_id(&HopNode::Uh(path_ref, pos)) {
                problem.graph.set_tag(node, tag.clone());
            }
        }
    }
}

/// Derives the candidate-AS tag of a star run flanked by known ASes,
/// given the Looking Glass AS path (§3.4: a single AS between the flanks
/// gives an exact tag; several give a combined tag like `{B, D}`).
fn derive_tag(lg_path: Option<&[AsId]>, a_prev: AsId, a_next: Option<AsId>) -> BTreeSet<AsId> {
    if let Some(lgp) = lg_path {
        if let Some(pa) = lgp.iter().position(|&a| a == a_prev) {
            match a_next {
                Some(next) => {
                    if let Some(rel) = lgp[pa + 1..].iter().position(|&a| a == next) {
                        let segment = &lgp[pa + 1..pa + 1 + rel];
                        if !segment.is_empty() {
                            return segment.iter().copied().collect();
                        }
                    }
                }
                None => {
                    let suffix = &lgp[pa + 1..];
                    if !suffix.is_empty() {
                        return suffix.iter().copied().collect();
                    }
                }
            }
        }
    }
    // Fallback: the flanking ASes themselves.
    let mut tag = BTreeSet::from([a_prev]);
    tag.extend(a_next);
    tag
}

/// Builds the link clusters of §3.4 among unidentified candidate edges:
/// two unidentified links may be the same physical link when (i) their
/// endpoint AS tags match, (ii) they lie on different paths, and (iii)
/// they appear in the same number of failure sets.
fn build_clusters(problem: &Problem) -> BTreeMap<EdgeId, Vec<EdgeId>> {
    struct Info {
        edge: EdgeId,
        tag_from: Option<BTreeSet<AsId>>,
        tag_to: Option<BTreeSet<AsId>>,
        path: PathRef,
        failures: usize,
    }
    let infos: Vec<Info> = problem
        .candidates
        .iter()
        .filter(|&e| problem.graph.is_unidentified(e))
        .filter_map(|e| {
            let d = problem.graph.edge(e);
            let (from_key, to_key) = problem.graph.endpoints(e);
            // The path identity comes from the Uh endpoint.
            let path = match (from_key, to_key) {
                (HopNode::Uh(p, _), _) | (_, HopNode::Uh(p, _)) => p,
                _ => return None,
            };
            let failures = problem
                .failure_sets
                .iter()
                .filter(|s| s.edges.contains(e))
                .count();
            Some(Info {
                edge: e,
                tag_from: problem.graph.node(d.from).tag.clone(),
                tag_to: problem.graph.node(d.to).tag.clone(),
                path,
                failures,
            })
        })
        .collect();

    let matches = |a: &Info, b: &Info| -> bool {
        a.path != b.path
            && a.failures == b.failures
            && a.tag_from.is_some()
            && a.tag_to.is_some()
            && a.tag_from == b.tag_from
            && a.tag_to == b.tag_to
    };

    // Greedy grouping in deterministic (EdgeId) order.
    let mut group_of: BTreeMap<EdgeId, usize> = BTreeMap::new();
    let mut groups: Vec<Vec<EdgeId>> = Vec::new();
    for (i, info) in infos.iter().enumerate() {
        if group_of.contains_key(&info.edge) {
            continue;
        }
        let gid = groups.len();
        let mut members = vec![info.edge];
        group_of.insert(info.edge, gid);
        for other in &infos[i + 1..] {
            if !group_of.contains_key(&other.edge) && matches(info, other) {
                group_of.insert(other.edge, gid);
                members.push(other.edge);
            }
        }
        groups.push(members);
    }

    let mut clusters = BTreeMap::new();
    for members in groups.iter().filter(|g| g.len() > 1) {
        for &e in members {
            clusters.insert(
                e,
                members
                    .iter()
                    .copied()
                    .filter(|&m| m != e)
                    .collect::<Vec<_>>(),
            );
        }
    }
    clusters
}
