//! Wire-format tests for [`DiagnosticReport`]: a golden JSON document
//! pinning the schema byte-for-byte, round-trips through the parser,
//! and version gating. A serialization change that breaks these breaks
//! every stored report and every daemon client — bump
//! `REPORT_SCHEMA_VERSION` instead.

// Test code: unwrap on a broken fixture is the correct failure mode.
#![allow(clippy::unwrap_used)]

use netdiagnoser::{
    Algorithm, DiagnosticReport, Issue, IssueCategory, IssueDetail, ReportCounters, Severity,
    REPORT_SCHEMA_VERSION,
};

/// One report exercising every issue category and detail shape.
fn full_report() -> DiagnosticReport {
    DiagnosticReport {
        schema: REPORT_SCHEMA_VERSION,
        algorithm: Algorithm::NdBgpIgp,
        severity: Severity::Critical,
        confidence: 0.75,
        counters: ReportCounters {
            failed_paths: 4,
            rerouted_paths: 2,
            probed_links: 9,
            suspect_links: 3,
            suspect_ases: 2,
            unexplained_failures: 1,
        },
        issues: vec![
            Issue {
                severity: Severity::Critical,
                category: IssueCategory::LinkFailure,
                confidence: 1.0,
                message: "dead wire".to_owned(),
                detail: IssueDetail::Link {
                    from: "10.1.0.1".to_owned(),
                    to: "10.2.0.1".to_owned(),
                    failed_explained: 3,
                    rerouted_explained: 1,
                    misconfig_toward: None,
                    igp_confirmed: true,
                },
            },
            Issue {
                severity: Severity::Error,
                category: IssueCategory::ExportMisconfig,
                confidence: 0.5,
                message: "bad export".to_owned(),
                detail: IssueDetail::Link {
                    from: "10.2.0.1".to_owned(),
                    to: "10.3.0.1".to_owned(),
                    failed_explained: 1,
                    rerouted_explained: 0,
                    misconfig_toward: Some("AS7".to_owned()),
                    igp_confirmed: false,
                },
            },
            Issue {
                severity: Severity::Warning,
                category: IssueCategory::UnidentifiedLinks,
                confidence: 0.25,
                message: "hidden hops".to_owned(),
                detail: IssueDetail::UnidentifiedGroup {
                    count: 1,
                    as_candidates: vec!["AS3".to_owned(), "AS5".to_owned()],
                },
            },
            Issue {
                severity: Severity::Warning,
                category: IssueCategory::UnexplainedFailures,
                confidence: 1.0,
                message: "1 path unexplained".to_owned(),
                detail: IssueDetail::Unexplained { count: 1 },
            },
            Issue {
                severity: Severity::Info,
                category: IssueCategory::SuspectAses,
                confidence: 1.0,
                message: "suspect ASes: AS3, AS7".to_owned(),
                detail: IssueDetail::AsSummary {
                    ases: vec!["AS3".to_owned(), "AS7".to_owned()],
                },
            },
        ],
    }
}

/// The exact wire form of [`full_report`] under schema version 1.
const GOLDEN: &str = concat!(
    r#"{"schema":1,"algorithm":"nd-bgpigp","severity":"critical","confidence":0.75,"#,
    r#""counters":{"failed_paths":4,"rerouted_paths":2,"probed_links":9,"suspect_links":3,"#,
    r#""suspect_ases":2,"unexplained_failures":1},"issues":["#,
    r#"{"severity":"critical","category":"link-failure","confidence":1,"message":"dead wire","#,
    r#""link":{"from":"10.1.0.1","to":"10.2.0.1","failed_explained":3,"rerouted_explained":1,"#,
    r#""misconfig_toward":null,"igp_confirmed":true}},"#,
    r#"{"severity":"error","category":"export-misconfig","confidence":0.5,"message":"bad export","#,
    r#""link":{"from":"10.2.0.1","to":"10.3.0.1","failed_explained":1,"rerouted_explained":0,"#,
    r#""misconfig_toward":"AS7","igp_confirmed":false}},"#,
    r#"{"severity":"warning","category":"unidentified-links","confidence":0.25,"#,
    r#""message":"hidden hops","unidentified":{"count":1,"as_candidates":["AS3","AS5"]}},"#,
    r#"{"severity":"warning","category":"unexplained-failures","confidence":1,"#,
    r#""message":"1 path unexplained","unexplained":{"count":1}},"#,
    r#"{"severity":"info","category":"suspect-ases","confidence":1,"#,
    r#""message":"suspect ASes: AS3, AS7","ases":["AS3","AS7"]}"#,
    r#"]}"#
);

#[test]
fn golden_json_is_stable() {
    assert_eq!(full_report().to_json(), GOLDEN);
}

#[test]
fn golden_json_parses_back_to_the_same_report() {
    let parsed = DiagnosticReport::from_json(GOLDEN).expect("golden document parses");
    assert_eq!(parsed, full_report());
}

#[test]
fn round_trip_survives_awkward_strings() {
    let mut report = full_report();
    report.issues[0].message = "tabs\tnewlines\nquotes \"q\" backslash \\ unicode \u{1}".into();
    let parsed = DiagnosticReport::from_json(&report.to_json()).expect("escaped JSON parses");
    assert_eq!(parsed, report);
}

#[test]
fn future_schema_versions_are_rejected_with_a_clear_error() {
    let json = GOLDEN.replace(r#""schema":1"#, r#""schema":2"#);
    let err = DiagnosticReport::from_json(&json).unwrap_err();
    assert!(err.contains("schema 2"), "{err}");
    assert!(err.contains("this build reads 1"), "{err}");
}

#[test]
fn truncated_documents_error_instead_of_defaulting() {
    for broken in [
        r#"{"schema":1}"#,
        r#"{"schema":1,"algorithm":"nd-edge","severity":"info","confidence":1}"#,
        &GOLDEN.replace(r#""igp_confirmed":true"#, r#""igp_confirmed":1"#),
    ] {
        assert!(DiagnosticReport::from_json(broken).is_err(), "{broken}");
    }
}
