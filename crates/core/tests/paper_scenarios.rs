//! Hand-built reproductions of the paper's running examples (Figures 2–4):
//! each algorithm behaves exactly as the text describes.
//!
//! Address convention in these tests: `10.<as>.<x>.<y>` belongs to AS
//! `<as>`. Sensors: s1 in AS-A(1), s2 in AS-B(2), s3 in AS-C(3). Transit:
//! AS-X(4) (the troubleshooter) and AS-Y(5).

// Test code: unwrap on a broken fixture is the correct failure mode.
#![allow(clippy::unwrap_used)]
use std::collections::BTreeSet;
use std::net::Ipv4Addr;

use netdiag_topology::{AsId, Prefix, SensorId};
use netdiagnoser::{
    nd_bgpigp, nd_edge, nd_lg, tomo, Hop, HopNode, IpToAsFn, LogicalPart, LookingGlassFn,
    Observations, ProbePath, RoutingFeed, SensorMeta, Snapshot, Weights, WithdrawalObs,
};

fn ip(a: u8, b: u8, c: u8) -> Ipv4Addr {
    Ipv4Addr::new(10, a, b, c)
}

fn addr_hop(a: u8, b: u8, c: u8) -> Hop {
    Hop::Addr(ip(a, b, c))
}

fn ip2as() -> IpToAsFn<impl Fn(Ipv4Addr) -> Option<AsId>> {
    IpToAsFn(|addr: Ipv4Addr| Some(AsId(u32::from(addr.octets()[1]))))
}

fn sensors() -> Vec<SensorMeta> {
    vec![
        SensorMeta {
            id: SensorId(0),
            addr: ip(1, 0, 200), // s1 in AS-A
            as_id: AsId(1),
        },
        SensorMeta {
            id: SensorId(1),
            addr: ip(2, 0, 200), // s2 in AS-B
            as_id: AsId(2),
        },
        SensorMeta {
            id: SensorId(2),
            addr: ip(3, 0, 200), // s3 in AS-C
            as_id: AsId(3),
        },
    ]
}

/// Pre-failure paths of the Figure 2 topology (only the s1-rooted pair and
/// its reverses that the tests need):
///
/// s1 -> s2:  a1, a2, x1, x2, y1, y2, b1, s2-host
/// s1 -> s3:  a1, a2, x1, x2, y1, y3, c1, s3-host
///
/// Router addresses (one per router for simplicity; traceroute would show
/// per-link ingress interfaces, which changes nothing for the algorithms):
/// a1=10.1.1.1 a2=10.1.2.1 x1=10.4.1.1 x2=10.4.2.1 y1=10.5.1.1
/// y2=10.5.2.1 y3=10.5.3.1 b1=10.2.1.1 c1=10.3.1.1
fn path_s1_s2(reached: bool) -> ProbePath {
    ProbePath {
        src: SensorId(0),
        dst: SensorId(1),
        hops: vec![
            addr_hop(1, 1, 1),
            addr_hop(1, 2, 1),
            addr_hop(4, 1, 1),
            addr_hop(4, 2, 1),
            addr_hop(5, 1, 1),
            addr_hop(5, 2, 1),
            addr_hop(2, 1, 1),
            Hop::Addr(ip(2, 0, 200)),
        ],
        reached,
    }
}

fn path_s1_s3(reached: bool, truncate_after: Option<usize>) -> ProbePath {
    let mut hops = vec![
        addr_hop(1, 1, 1),
        addr_hop(1, 2, 1),
        addr_hop(4, 1, 1),
        addr_hop(4, 2, 1),
        addr_hop(5, 1, 1),
        addr_hop(5, 3, 1),
        addr_hop(3, 1, 1),
        Hop::Addr(ip(3, 0, 200)),
    ];
    if let Some(n) = truncate_after {
        hops.truncate(n);
    }
    ProbePath {
        src: SensorId(0),
        dst: SensorId(2),
        hops,
        reached,
    }
}

/// The misconfiguration scenario of §3.1: y1 stops announcing the route
/// toward AS-C to x2. Path s1->s3 dies at x2; s1->s2 keeps working over
/// the same physical x2-y1 link.
fn misconfig_observations() -> Observations {
    Observations {
        sensors: sensors(),
        before: Snapshot {
            paths: vec![path_s1_s2(true), path_s1_s3(true, None)],
        },
        after: Snapshot {
            paths: vec![
                path_s1_s2(true),
                // Probe now stops at x2 (hop index 3).
                path_s1_s3(false, Some(4)),
            ],
        },
    }
}

#[test]
fn tomo_cannot_explain_misconfiguration() {
    // §5.1: Tomo assumes a link carrying a working path is up, so the
    // misconfigured link is exonerated and the failure stays unexplained.
    let obs = misconfig_observations();
    let d = tomo(&obs, &ip2as());
    // Every link of the failed path except y1-y3, y3-c1, c1-s3 also carries
    // the working path; those three remain candidates but... they are NOT
    // on the working path, so Tomo still picks among them. The key paper
    // claim is that the actually-misconfigured link x2-y1 is NOT in H.
    let has_x2_y1 = d
        .hypothesis_endpoints()
        .iter()
        .any(|(a, b)| *a == HopNode::Ip(ip(4, 2, 1)) && *b == HopNode::Ip(ip(5, 1, 1)));
    assert!(!has_x2_y1, "Tomo must miss the misconfigured link");
}

#[test]
fn nd_edge_localizes_misconfiguration_via_logical_links() {
    // §3.1: with logical links, x2-y1(C) and y1(C)-y1 stay candidates and
    // are selected, localizing the misconfiguration on x2-y1.
    let obs = misconfig_observations();
    let d = nd_edge(&obs, &ip2as(), Weights::default());
    // The hypothesis contains logical halves of the x2->y1 physical link
    // annotated with AS-C (AsId 3).
    let g = d.graph();
    let mut found_first = false;
    let mut found_second = false;
    for &e in &d.hypothesis {
        let data = g.edge(e);
        let (from, to) = g.endpoints(e);
        if from == HopNode::Ip(ip(4, 2, 1)) && to == HopNode::Ip(ip(5, 1, 1)) {
            match data.logical {
                Some(LogicalPart::First(AsId(3))) => found_first = true,
                Some(LogicalPart::Second(AsId(3))) => found_second = true,
                _ => {}
            }
        }
    }
    assert!(
        found_first && found_second,
        "ND-edge must hypothesize the logical halves x2-y1(C), y1(C)-y1; got {:?}",
        d.hypothesis_endpoints()
    );
    // And it must NOT blame the AS-B-annotated halves (the working ones).
    for &e in &d.hypothesis {
        if let Some(LogicalPart::First(a) | LogicalPart::Second(a)) = g.edge(e).logical {
            assert_ne!(a, AsId(2), "working logical link blamed");
        }
    }
}

/// Reroute scenario: s1->s3 has a backup through y2/b-side and reroutes
/// after the y1-y3 link fails, while s1->s2 breaks (no backup).
/// The reroute set {y1-y3} plus failure information lets ND-edge find both.
#[test]
fn nd_edge_uses_reroute_sets() {
    // Before: s1->s3 via y1, y3. After: still reached but via y1, y2, y4.
    let before_s1_s3 = path_s1_s3(true, None);
    let after_s1_s3 = ProbePath {
        src: SensorId(0),
        dst: SensorId(2),
        hops: vec![
            addr_hop(1, 1, 1),
            addr_hop(1, 2, 1),
            addr_hop(4, 1, 1),
            addr_hop(4, 2, 1),
            addr_hop(5, 1, 1),
            addr_hop(5, 2, 1), // y2 instead of y3
            addr_hop(5, 4, 1), // y4
            addr_hop(3, 1, 1),
            Hop::Addr(ip(3, 0, 200)),
        ],
        reached: true,
    };
    // s1->s2 fails at y1 this time (y1-y2 link also down, say).
    let after_s1_s2 = ProbePath {
        src: SensorId(0),
        dst: SensorId(1),
        hops: vec![
            addr_hop(1, 1, 1),
            addr_hop(1, 2, 1),
            addr_hop(4, 1, 1),
            addr_hop(4, 2, 1),
            addr_hop(5, 1, 1),
        ],
        reached: false,
    };
    let obs = Observations {
        sensors: sensors(),
        before: Snapshot {
            paths: vec![path_s1_s2(true), before_s1_s3],
        },
        after: Snapshot {
            paths: vec![after_s1_s2, after_s1_s3],
        },
    };
    let d = nd_edge(&obs, &ip2as(), Weights::default());
    assert_eq!(d.problem.reroute_sets.len(), 1, "one rerouted pair");
    // The reroute set contains the y1->y3 and y3->c1 old links (and the
    // c1->host link since the new path enters c1 differently? No: c1 and
    // host appear in both paths, so only y1->y3 and y3->c1 vanish).
    let rs = &d.problem.reroute_sets[0];
    let g = d.graph();
    let phys: BTreeSet<(HopNode, HopNode)> = rs
        .edges
        .iter()
        .map(|e| {
            let (a, b) = g.endpoints(e);
            (a, b)
        })
        .collect();
    assert!(phys.contains(&(HopNode::Ip(ip(5, 1, 1)), HopNode::Ip(ip(5, 3, 1)))));
    // Hypothesis must cover the reroute set (the failed y1-y3 link region).
    assert!(
        d.hypothesis.iter().any(|&e| rs.edges.contains(e)),
        "reroute set must be hit"
    );
    // Tomo, by contrast, wrongly exonerates y1->y3? No — y1->y3 is not on
    // any *stale working* path (s1->s3's stale path contains it and the
    // pair still works, so Tomo clears it!). Check the contrast explicitly:
    let t = tomo(&obs, &ip2as());
    let t_has_y1_y3 = t
        .hypothesis_endpoints()
        .iter()
        .any(|(a, b)| *a == HopNode::Ip(ip(5, 1, 1)) && *b == HopNode::Ip(ip(5, 3, 1)));
    assert!(
        !t_has_y1_y3,
        "Tomo's stale working path clears the real failure"
    );
}

#[test]
fn nd_bgpigp_withdrawal_prunes_upstream_links() {
    // §3.3 example transposed: paths s1->s2 and s1->s3 both fail; AS-X's
    // border x1... here the withdrawal arrives at a router of AS-X from
    // the AS-A neighbor a2 for prefix 10.2/16 (s2's prefix): everything on
    // the failed path up to and including the a2 hop is exonerated.
    //
    // Use the reverse direction to match the paper exactly: path s2->s1
    // fails; AS-X received a withdrawal from its neighbor a2 (10.1.2.1)
    // for s1's prefix 10.1/16. (The path below is y-side toward s1.)
    let path_s2_s1 = |reached: bool, cut: Option<usize>| {
        let mut hops = vec![
            addr_hop(2, 1, 1), // b1
            addr_hop(5, 2, 1), // y2
            addr_hop(5, 1, 1), // y1
            addr_hop(4, 2, 1), // x2
            addr_hop(4, 1, 1), // x1
            addr_hop(1, 2, 1), // a2
            addr_hop(1, 1, 1), // a1
            Hop::Addr(ip(1, 0, 200)),
        ];
        if let Some(n) = cut {
            hops.truncate(n);
        }
        ProbePath {
            src: SensorId(1),
            dst: SensorId(0),
            hops,
            reached,
        }
    };
    let obs = Observations {
        sensors: sensors(),
        before: Snapshot {
            paths: vec![path_s2_s1(true, None)],
        },
        after: Snapshot {
            // Fails somewhere past a2 (a2-a1 link down).
            paths: vec![path_s2_s1(false, Some(6))],
        },
    };
    let feed = RoutingFeed {
        withdrawals: vec![WithdrawalObs {
            from_addr: ip(1, 2, 1), // a2
            prefix: Prefix::new(Ipv4Addr::new(10, 1, 0, 0), 16),
        }],
        igp_link_down: vec![],
    };
    let without = nd_edge(&obs, &ip2as(), Weights::default());
    let with = nd_bgpigp(&obs, &ip2as(), &feed, Weights::default());
    assert!(
        with.len() < without.len(),
        "withdrawal must shrink the hypothesis: {} vs {}",
        with.len(),
        without.len()
    );
    // Everything strictly upstream of a2 is exonerated: no hypothesis
    // edge may end at b1/y2/y1/x2/x1. The edge *into* a2 is physically
    // exonerated too (the withdrawal arrived over it), but its logical
    // variants stay candidates — a misconfigured a2 export filter would
    // produce the identical withdrawal.
    let upstream: BTreeSet<HopNode> = [
        ip(2, 1, 1),
        ip(5, 2, 1),
        ip(5, 1, 1),
        ip(4, 2, 1),
        ip(4, 1, 1),
    ]
    .into_iter()
    .map(HopNode::Ip)
    .collect();
    for &e in &with.hypothesis {
        let (_, to) = with.graph().endpoints(e);
        assert!(
            !upstream.contains(&to),
            "upstream link into {to:?} should have been pruned"
        );
        if to == HopNode::Ip(ip(1, 2, 1)) {
            assert!(
                with.graph().edge(e).logical.is_some(),
                "only logical variants of the into-a2 link may remain"
            );
        }
    }
    // The remaining suspect is the a2->a1 link (and/or a1->s1).
    assert!(with
        .hypothesis_endpoints()
        .iter()
        .any(|(_, to)| *to == HopNode::Ip(ip(1, 1, 1)) || *to == HopNode::Ip(ip(1, 0, 200))));
}

#[test]
fn nd_bgpigp_igp_event_forces_exact_link() {
    // A failure inside AS-X: the IGP link-down names the exact link; the
    // hypothesis is that link alone (paper: "ND-bgpigp can always find the
    // exact set of failed links" inside AS-X).
    let obs = Observations {
        sensors: sensors(),
        before: Snapshot {
            paths: vec![path_s1_s2(true)],
        },
        after: Snapshot {
            paths: vec![ProbePath {
                src: SensorId(0),
                dst: SensorId(1),
                hops: vec![addr_hop(1, 1, 1), addr_hop(1, 2, 1), addr_hop(4, 1, 1)],
                reached: false,
            }],
        },
    };
    // Interface addresses are per-link: the probed ingress of x2 is
    // 10.4.2.1 (its side of the x1-x2 link); x1's side is 10.4.77.1 and is
    // never observed (probes only cross the link one way).
    let feed = RoutingFeed {
        withdrawals: vec![],
        igp_link_down: vec![netdiagnoser::IgpLinkDownObs {
            addr_a: ip(4, 77, 1), // x1 side of the failed link
            addr_b: ip(4, 2, 1),  // x2 side (= x2's observed hop address)
        }],
    };
    let d = nd_bgpigp(&obs, &ip2as(), &feed, Weights::default());
    // Forced: the x1->x2 edge (the direction probed). Nothing else needed.
    assert_eq!(d.len(), 1, "hypothesis: {:?}", d.hypothesis_endpoints());
    let (from, to) = d.hypothesis_endpoints()[0];
    assert_eq!(from, HopNode::Ip(ip(4, 1, 1)));
    assert_eq!(to, HopNode::Ip(ip(4, 2, 1)));
}

#[test]
fn nd_lg_maps_stars_to_blocked_as() {
    // Figure 4: path si - x - u1 u2 u3 - y - sj where the u's are in
    // blocked AS-B(5 here); the LG of the source AS returns A-...-B-...-C
    // and the UHs get tag {B}.
    let blocked_path = |reached: bool, cut: Option<usize>| {
        let mut hops = vec![
            addr_hop(1, 1, 1), // x in AS-A(1)
            Hop::Star,         // u1 (AS 5)
            Hop::Star,         // u2
            Hop::Star,         // u3
            addr_hop(3, 1, 1), // y in AS-C(3)
            Hop::Addr(ip(3, 0, 200)),
        ];
        if let Some(n) = cut {
            hops.truncate(n);
        }
        ProbePath {
            src: SensorId(0),
            dst: SensorId(2),
            hops,
            reached,
        }
    };
    let obs = Observations {
        sensors: sensors(),
        before: Snapshot {
            paths: vec![blocked_path(true, None)],
        },
        after: Snapshot {
            // Dies inside the blocked AS.
            paths: vec![blocked_path(false, Some(3))],
        },
    };
    let lg = LookingGlassFn(|from: AsId, _dst: Ipv4Addr| {
        // Every AS sees the path A(1) - B(5) - C(3) from its own position.
        let full = [AsId(1), AsId(5), AsId(3)];
        full.iter()
            .position(|&a| a == from)
            .map(|i| full[i..].to_vec())
    });
    let d = nd_lg(
        &obs,
        &ip2as(),
        &RoutingFeed::default(),
        &lg,
        Weights::default(),
    );
    assert!(!d.hypothesis.is_empty());
    // The AS-level hypothesis names the blocked AS 5.
    let ases = d.as_hypothesis();
    assert!(
        ases.contains(&AsId(5)),
        "AS hypothesis {ases:?} must contain the blocked AS"
    );
}

#[test]
fn nd_lg_combined_tag_when_ambiguous() {
    // LG AS path A-B-D-C with one star run between A and C: the UHs get
    // the combined tag {B, D}.
    let path = |reached: bool, cut: Option<usize>| {
        let mut hops = vec![
            addr_hop(1, 1, 1),
            Hop::Star,
            Hop::Star,
            addr_hop(3, 1, 1),
            Hop::Addr(ip(3, 0, 200)),
        ];
        if let Some(n) = cut {
            hops.truncate(n);
        }
        ProbePath {
            src: SensorId(0),
            dst: SensorId(2),
            hops,
            reached,
        }
    };
    let obs = Observations {
        sensors: sensors(),
        before: Snapshot {
            paths: vec![path(true, None)],
        },
        after: Snapshot {
            paths: vec![path(false, Some(2))],
        },
    };
    let lg = LookingGlassFn(|from: AsId, _| {
        let full = [AsId(1), AsId(5), AsId(6), AsId(3)]; // A-B-D-C
        full.iter()
            .position(|&a| a == from)
            .map(|i| full[i..].to_vec())
    });
    let d = nd_lg(
        &obs,
        &ip2as(),
        &RoutingFeed::default(),
        &lg,
        Weights::default(),
    );
    let ases = d.as_hypothesis();
    assert!(
        ases.contains(&AsId(5)) && ases.contains(&AsId(6)),
        "ambiguous tag must include both candidate ASes, got {ases:?}"
    );
}

#[test]
fn single_link_failure_tomo_perfect() {
    // §5.1: single non-recoverable link failures are Tomo's easy case.
    // s1->s2 and s1->s3 share the a2-x1 link; only s1->s2 dies beyond it.
    let obs = Observations {
        sensors: sensors(),
        before: Snapshot {
            paths: vec![path_s1_s2(true), path_s1_s3(true, None)],
        },
        after: Snapshot {
            paths: vec![
                // s1->s2 now dies right after y1 (y1-y2 failed).
                ProbePath {
                    src: SensorId(0),
                    dst: SensorId(1),
                    hops: vec![
                        addr_hop(1, 1, 1),
                        addr_hop(1, 2, 1),
                        addr_hop(4, 1, 1),
                        addr_hop(4, 2, 1),
                        addr_hop(5, 1, 1),
                    ],
                    reached: false,
                },
                path_s1_s3(true, None),
            ],
        },
    };
    let d = tomo(&obs, &ip2as());
    // Candidates: the suffix y1->y2->b1->s2 (prefix cleared by the working
    // s1->s3 path). All three tie at score 1 and are all returned; the
    // true failed link y1-y2 is among them (sensitivity 1).
    let endpoints = d.hypothesis_endpoints();
    assert!(endpoints
        .iter()
        .any(|(a, b)| *a == HopNode::Ip(ip(5, 1, 1)) && *b == HopNode::Ip(ip(5, 2, 1))));
    assert!(d.greedy.unexplained_failures.is_empty());
}

#[test]
fn section32_reroute_set_example_literal() {
    // §3.2: "At time T-, p_ij consists of the set of links
    // p^{T-} = {l1, l2, l3, l4}, and at time T+, p^{T+} = {l1, l2, l5, l6}.
    // ... We call {l3, l4} a reroute set."
    //
    // Hops: s -> h1 -> h2 -> h3 -> h4 -> dst   (links l1..l4, host link)
    // After: s -> h1 -> h2 -> h5 -> h6 -> dst  (l1, l2, l5, l6)
    let h = |x: u8| Hop::Addr(ip(9, x, 1));
    let dst_host = Hop::Addr(ip(2, 0, 200));
    let before = ProbePath {
        src: SensorId(0),
        dst: SensorId(1),
        hops: vec![h(0), h(1), h(2), h(3), h(4), dst_host],
        reached: true,
    };
    let after = ProbePath {
        src: SensorId(0),
        dst: SensorId(1),
        hops: vec![h(0), h(1), h(2), h(5), h(6), dst_host],
        reached: true,
    };
    let obs = Observations {
        sensors: sensors(),
        before: Snapshot {
            paths: vec![before],
        },
        after: Snapshot { paths: vec![after] },
    };
    let d = nd_edge(&obs, &ip2as(), Weights::default());
    assert_eq!(d.problem.reroute_sets.len(), 1);
    let rs = &d.problem.reroute_sets[0];
    // The reroute set is exactly the two abandoned links: the edges into
    // h3 (l3) and h4 (l4). The edge into the destination host is shared
    // (same ingress) and the prefix l1, l2 are unchanged.
    let targets: BTreeSet<HopNode> = rs.edges.iter().map(|e| d.graph().endpoints(e).1).collect();
    assert_eq!(
        targets,
        BTreeSet::from([HopNode::Ip(ip(9, 3, 1)), HopNode::Ip(ip(9, 4, 1))]),
        "reroute set must be exactly {{l3, l4}}"
    );
    // And the greedy must hit it (a failed link hides among l3/l4).
    let hit = d.hypothesis.iter().any(|&e| rs.edges.contains(e));
    assert!(hit, "{:?}", d.hypothesis_endpoints());
}
