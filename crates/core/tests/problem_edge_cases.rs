//! Edge cases of the tomography-problem builder: degenerate observations
//! must produce sane problems, never panics.

// Test code: unwrap on a broken fixture is the correct failure mode.
#![allow(clippy::unwrap_used)]
use std::net::Ipv4Addr;

use netdiag_topology::{AsId, SensorId};
use netdiagnoser::{
    nd_edge, tomo, BuildOptions, Hop, IpToAsFn, Observations, ProbePath, Problem, SensorMeta,
    Snapshot, Weights,
};

fn ip2as() -> IpToAsFn<impl Fn(Ipv4Addr) -> Option<AsId>> {
    IpToAsFn(|a: Ipv4Addr| Some(AsId(u32::from(a.octets()[1]))))
}

fn sensors(n: u32) -> Vec<SensorMeta> {
    (0..n)
        .map(|i| SensorMeta {
            id: SensorId(i),
            addr: Ipv4Addr::new(10, (i + 1) as u8, 0, 200),
            as_id: AsId(i + 1),
        })
        .collect()
}

fn path(src: u32, dst: u32, hops: Vec<Hop>, reached: bool) -> ProbePath {
    ProbePath {
        src: SensorId(src),
        dst: SensorId(dst),
        hops,
        reached,
    }
}

#[test]
fn empty_observations_build_empty_problem() {
    let obs = Observations {
        sensors: sensors(2),
        before: Snapshot::default(),
        after: Snapshot::default(),
    };
    for opts in [
        BuildOptions::tomo(),
        BuildOptions::nd_edge(),
        BuildOptions::nd_lg(),
    ] {
        let p = Problem::build(&obs, &ip2as(), opts);
        assert_eq!(p.graph.edge_count(), 0);
        assert!(p.failure_sets.is_empty());
        assert!(p.candidates.is_empty());
    }
    let d = tomo(&obs, &ip2as());
    assert!(d.is_empty());
}

#[test]
fn nothing_failed_means_empty_hypothesis() {
    let hops = vec![
        Hop::Addr(Ipv4Addr::new(10, 1, 1, 1)),
        Hop::Addr(Ipv4Addr::new(10, 2, 1, 1)),
        Hop::Addr(Ipv4Addr::new(10, 2, 0, 200)),
    ];
    let obs = Observations {
        sensors: sensors(2),
        before: Snapshot {
            paths: vec![path(0, 1, hops.clone(), true)],
        },
        after: Snapshot {
            paths: vec![path(0, 1, hops, true)],
        },
    };
    let d = nd_edge(&obs, &ip2as(), Weights::default());
    assert!(d.is_empty());
    assert!(d.problem.reroute_sets.is_empty());
}

#[test]
fn pair_broken_before_the_event_is_not_diagnosed() {
    // The pair was already failed at T-: its breakage predates the event
    // and must not contribute a failure set.
    let broken_before = path(0, 1, vec![Hop::Addr(Ipv4Addr::new(10, 1, 1, 1))], false);
    let broken_after = path(0, 1, vec![Hop::Addr(Ipv4Addr::new(10, 1, 1, 1))], false);
    let obs = Observations {
        sensors: sensors(2),
        before: Snapshot {
            paths: vec![broken_before],
        },
        after: Snapshot {
            paths: vec![broken_after],
        },
    };
    let p = Problem::build(&obs, &ip2as(), BuildOptions::nd_edge());
    assert!(p.failure_sets.is_empty());
}

#[test]
fn pair_missing_from_after_snapshot_is_skipped() {
    // No T+ measurement for the pair (sensor offline): neither a failure
    // set nor a working constraint.
    let obs = Observations {
        sensors: sensors(2),
        before: Snapshot {
            paths: vec![path(
                0,
                1,
                vec![
                    Hop::Addr(Ipv4Addr::new(10, 1, 1, 1)),
                    Hop::Addr(Ipv4Addr::new(10, 2, 0, 200)),
                ],
                true,
            )],
        },
        after: Snapshot::default(),
    };
    let p = Problem::build(&obs, &ip2as(), BuildOptions::nd_edge());
    assert!(p.failure_sets.is_empty());
    assert!(p.working_edges.is_empty());
    assert!(p.candidates.is_empty());
}

#[test]
fn single_hop_paths_are_handled() {
    // Source attach router only (destination adjacent or measurement
    // truncated immediately): zero edges, no panic.
    let obs = Observations {
        sensors: sensors(2),
        before: Snapshot {
            paths: vec![path(
                0,
                1,
                vec![Hop::Addr(Ipv4Addr::new(10, 1, 1, 1))],
                true,
            )],
        },
        after: Snapshot {
            paths: vec![path(
                0,
                1,
                vec![Hop::Addr(Ipv4Addr::new(10, 1, 1, 1))],
                false,
            )],
        },
    };
    let d = nd_edge(&obs, &ip2as(), Weights::default());
    // The failure set is empty (no observed links): unexplainable.
    assert_eq!(d.unexplained_failures(), 1);
    assert!(d.is_empty());
}

#[test]
fn unexplained_count_is_pinned_on_a_mixed_scenario() {
    // Regression pin for the count cached at `Diagnosis` construction:
    // one failed path with candidate links (explained by the greedy
    // cover) and one with none (unexplainable) must report exactly 1 —
    // not 0 (cache never filled) and not 2 (cache counting all failures).
    let a = |x: u8, y: u8| Ipv4Addr::new(10, x, 0, y);
    let obs = Observations {
        sensors: sensors(3),
        before: Snapshot {
            paths: vec![
                path(
                    0,
                    1,
                    vec![Hop::Addr(a(1, 1)), Hop::Addr(a(2, 1)), Hop::Addr(a(2, 200))],
                    true,
                ),
                path(0, 2, vec![Hop::Addr(a(1, 1))], true),
            ],
        },
        after: Snapshot {
            paths: vec![
                path(0, 1, vec![Hop::Addr(a(1, 1))], false),
                path(0, 2, vec![Hop::Addr(a(1, 1))], false),
            ],
        },
    };
    let d = nd_edge(&obs, &ip2as(), Weights::default());
    assert!(!d.is_empty(), "the explainable failure yields a suspect");
    assert_eq!(d.unexplained_failures(), 1);
    // The structured report mirrors the cached value.
    let report = netdiagnoser::DiagnosticReport::from_diagnosis(
        &d,
        &netdiagnoser::DiagnosticsConfig::default(),
    );
    assert_eq!(report.counters.unexplained_failures, 1);
}

#[test]
fn unmapped_addresses_fall_back_to_plain_edges() {
    // ip2as knows nothing: logical expansion must degrade gracefully to
    // physical edges.
    let unknown = IpToAsFn(|_| None);
    let obs = Observations {
        sensors: sensors(2),
        before: Snapshot {
            paths: vec![path(
                0,
                1,
                vec![
                    Hop::Addr(Ipv4Addr::new(10, 1, 1, 1)),
                    Hop::Addr(Ipv4Addr::new(10, 9, 1, 1)),
                    Hop::Addr(Ipv4Addr::new(10, 2, 0, 200)),
                ],
                true,
            )],
        },
        after: Snapshot {
            paths: vec![path(
                0,
                1,
                vec![Hop::Addr(Ipv4Addr::new(10, 1, 1, 1))],
                false,
            )],
        },
    };
    let p = Problem::build(&obs, &unknown, BuildOptions::nd_edge());
    for (_, e) in p.graph.edges() {
        assert!(e.logical.is_none(), "no logical links without AS mapping");
    }
    let d = nd_edge(&obs, &unknown, Weights::default());
    assert!(!d.is_empty());
}

#[test]
fn asymmetric_mesh_directions_are_independent() {
    // 0->1 fails while 1->0 keeps working: only one failure set, and the
    // reverse-direction edges are working constraints, not candidates.
    let fwd = |reached| {
        path(
            0,
            1,
            vec![
                Hop::Addr(Ipv4Addr::new(10, 1, 1, 1)),
                Hop::Addr(Ipv4Addr::new(10, 3, 1, 1)),
                Hop::Addr(Ipv4Addr::new(10, 2, 0, 200)),
            ],
            reached,
        )
    };
    let rev = path(
        1,
        0,
        vec![
            Hop::Addr(Ipv4Addr::new(10, 2, 1, 1)),
            Hop::Addr(Ipv4Addr::new(10, 3, 2, 1)),
            Hop::Addr(Ipv4Addr::new(10, 1, 0, 200)),
        ],
        true,
    );
    let obs = Observations {
        sensors: sensors(2),
        before: Snapshot {
            paths: vec![fwd(true), rev.clone()],
        },
        after: Snapshot {
            paths: vec![
                path(0, 1, vec![Hop::Addr(Ipv4Addr::new(10, 1, 1, 1))], false),
                rev,
            ],
        },
    };
    let p = Problem::build(&obs, &ip2as(), BuildOptions::nd_edge());
    assert_eq!(p.failure_sets.len(), 1);
    let d = nd_edge(&obs, &ip2as(), Weights::default());
    assert!(!d.is_empty());
}
