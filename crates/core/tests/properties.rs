//! Property-based tests of the diagnoser core: hitting-set solver laws,
//! SCFS invariants, metric bounds, and graph interning laws.

// Test code: unwrap on a broken fixture is the correct failure mode.
#![allow(clippy::unwrap_used)]
use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;

use proptest::prelude::*;

use netdiag_topology::AsId;
use netdiagnoser::{metrics, scfs, EdgeBitSet, EdgeId, HittingSetInstance, Weights};

/// Random hitting-set instance: sets over a small universe, with all their
/// elements as candidates.
fn instance_strategy() -> impl Strategy<Value = HittingSetInstance> {
    proptest::collection::vec(proptest::collection::btree_set(0u32..20, 1..5), 1..8).prop_map(
        |sets| {
            let failure_sets: Vec<EdgeBitSet> = sets
                .into_iter()
                .map(|s| s.into_iter().map(EdgeId).collect())
                .collect();
            let candidates: EdgeBitSet = failure_sets.iter().flat_map(|s| s.iter()).collect();
            HittingSetInstance {
                failure_sets,
                reroute_sets: Vec::new(),
                candidates,
                clusters: BTreeMap::new(),
            }
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Greedy always produces a valid hitting set when one exists (every
    /// set has at least one candidate here), and never reports unexplained
    /// sets in that case.
    #[test]
    fn greedy_hits_everything_hittable(inst in instance_strategy()) {
        let r = inst.greedy(Weights::default());
        prop_assert!(r.unexplained_failures.is_empty());
        let h: BTreeSet<EdgeId> = r.hypothesis.iter().copied().collect();
        for set in &inst.failure_sets {
            prop_assert!(set.iter().any(|e| h.contains(&e)));
        }
        // The hypothesis only draws from candidates.
        prop_assert!(h.iter().all(|&e| inst.candidates.contains(e)));
    }

    /// The exact solver returns a hitting set no larger than the greedy's,
    /// and the greedy stays within the ln(n)+1 approximation bound
    /// (Johnson 1974), counting one greedy iteration's tie-group as the
    /// cost unit the bound applies to.
    #[test]
    fn exact_is_minimal(inst in instance_strategy()) {
        let greedy = inst.greedy(Weights::default());
        let exact = inst.exact(greedy.hypothesis.len().max(1)).expect("hittable");
        prop_assert!(exact.len() <= greedy.hypothesis.len());
        // Exact result is itself a hitting set.
        let h: BTreeSet<EdgeId> = exact.iter().copied().collect();
        for set in &inst.failure_sets {
            prop_assert!(set.iter().any(|e| h.contains(&e)));
        }
    }

    /// Removing candidates can only grow (or keep) the exact minimum.
    #[test]
    fn exact_monotone_in_candidates(inst in instance_strategy()) {
        let full = inst.exact(32).expect("hittable");
        let mut restricted = inst.clone();
        // Drop one candidate that is not the sole hitter of any set.
        let removable = restricted.candidates.iter().find(|&e| {
            restricted
                .failure_sets
                .iter()
                .all(|s| !s.contains(e) || s.len() > 1)
        });
        if let Some(e) = removable {
            restricted.candidates.remove(e);
            for s in &mut restricted.failure_sets {
                s.remove(e);
            }
            if restricted.failure_sets.iter().all(|s| !s.is_empty()) {
                let smaller = restricted.exact(32).expect("still hittable");
                prop_assert!(smaller.len() >= full.len());
            }
        }
    }

    /// Metric bounds: sensitivity and specificity always in [0, 1], and
    /// extreme hypotheses hit the extremes.
    #[test]
    fn metric_bounds(
        failed in proptest::collection::btree_set(0u32..30, 1..5),
        hyp in proptest::collection::btree_set(0u32..30, 0..10),
    ) {
        let universe: BTreeSet<u32> = (0..30).collect();
        let s = metrics::sensitivity(&failed, &hyp);
        let p = metrics::specificity(&universe, &failed, &hyp);
        prop_assert!((0.0..=1.0).contains(&s));
        prop_assert!((0.0..=1.0).contains(&p));
        // Perfect hypothesis.
        prop_assert_eq!(metrics::sensitivity(&failed, &failed), 1.0);
        prop_assert_eq!(metrics::specificity(&universe, &failed, &failed), 1.0);
        // Empty hypothesis: no true positives, no false positives.
        prop_assert_eq!(metrics::sensitivity(&failed, &BTreeSet::new()), 0.0);
        prop_assert_eq!(
            metrics::specificity(&universe, &failed, &BTreeSet::new()),
            1.0
        );
    }

    /// Diagnosability is in [0, 1] and equals 1 when every link has a
    /// unique path set.
    #[test]
    fn diagnosability_bounds(paths in proptest::collection::vec(
        proptest::collection::vec(0u32..12, 1..5), 1..6)
    ) {
        let d = metrics::diagnosability(&paths);
        prop_assert!((0.0..=1.0).contains(&d));
        // Singleton disjoint paths: D = 1.
        let disjoint: Vec<Vec<u32>> = (0..4).map(|i| vec![i]).collect();
        prop_assert_eq!(metrics::diagnosability(&disjoint), 1.0);
    }

    /// SCFS marks a set of edges that (a) only contains tree edges, and
    /// (b) explains every bad destination (some marked edge lies on its
    /// path) while touching no good path when failures are single-branch.
    #[test]
    fn scfs_explains_bad_destinations(bad_mask in 1u8..15) {
        // Fixed 4-leaf tree; the mask picks which leaves are bad.
        let leaves = ["d0", "d1", "d2", "d3"];
        let paths: Vec<(Vec<&str>, bool)> = leaves
            .iter()
            .enumerate()
            .map(|(i, leaf)| {
                let branch = if i < 2 { "b01" } else { "b23" };
                (vec!["s", branch, leaf], bad_mask & (1 << i) == 0)
            })
            .collect();
        let failed = scfs(&"s", &paths);
        for (path, good) in &paths {
            let touched = path
                .windows(2)
                .any(|w| failed.contains(&(w[0], w[1])));
            if *good {
                prop_assert!(!touched, "good path touched: {path:?} {failed:?}");
            } else {
                prop_assert!(touched, "bad path unexplained: {path:?} {failed:?}");
            }
        }
    }
}

/// AS-level metric helpers behave on hand cases (non-proptest edge cases).
#[test]
fn as_metric_edge_cases() {
    let empty: Vec<BTreeSet<AsId>> = Vec::new();
    assert_eq!(metrics::as_sensitivity(&empty, &BTreeSet::new()), 1.0);
    let probed: BTreeSet<AsId> = [AsId(1)].into();
    assert_eq!(
        metrics::as_specificity(&probed, &probed, &BTreeSet::new()),
        1.0,
        "no non-failed probed ASes -> vacuous 1.0"
    );
    let _ = Ipv4Addr::new(10, 0, 0, 1);
}
