//! Property-based roundtrip tests for the text interchange format: any
//! observations/feed/LG dump must survive write -> parse unchanged.

// Test code: unwrap on a broken fixture is the correct failure mode.
#![allow(clippy::unwrap_used)]
use std::net::Ipv4Addr;

use proptest::prelude::*;

use netdiag_topology::{AsId, Prefix, SensorId};
use netdiagnoser::text::{
    parse_feed, parse_observations, write_feed, write_observations, RecordedLookingGlass,
};
use netdiagnoser::{
    Hop, IgpLinkDownObs, LookingGlass, Observations, ProbePath, RoutingFeed, SensorMeta, Snapshot,
    WithdrawalObs,
};

fn arb_addr() -> impl Strategy<Value = Ipv4Addr> {
    any::<u32>().prop_map(Ipv4Addr::from)
}

fn arb_hop() -> impl Strategy<Value = Hop> {
    prop_oneof![arb_addr().prop_map(Hop::Addr), Just(Hop::Star)]
}

fn arb_path(n_sensors: u32) -> impl Strategy<Value = ProbePath> {
    (
        0..n_sensors,
        0..n_sensors,
        proptest::collection::vec(arb_hop(), 0..8),
        any::<bool>(),
    )
        .prop_map(|(s, d, hops, reached)| ProbePath {
            src: SensorId(s),
            dst: SensorId(d),
            hops,
            reached,
        })
}

fn arb_observations() -> impl Strategy<Value = Observations> {
    let sensors = proptest::collection::vec((arb_addr(), 0u32..200), 1..5).prop_map(|v| {
        v.into_iter()
            .enumerate()
            .map(|(i, (addr, a))| SensorMeta {
                id: SensorId(i as u32),
                addr,
                as_id: AsId(a),
            })
            .collect::<Vec<_>>()
    });
    (
        sensors,
        proptest::collection::vec(arb_path(4), 0..6),
        proptest::collection::vec(arb_path(4), 0..6),
    )
        .prop_map(|(sensors, before, after)| Observations {
            sensors,
            before: Snapshot { paths: before },
            after: Snapshot { paths: after },
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn observations_roundtrip(obs in arb_observations()) {
        let (s, b, a) = write_observations(&obs);
        let parsed = parse_observations(&s, &b, &a).unwrap();
        prop_assert_eq!(parsed.sensors, obs.sensors);
        prop_assert_eq!(parsed.before.paths.len(), obs.before.paths.len());
        for (p, q) in parsed.before.paths.iter().zip(&obs.before.paths) {
            prop_assert_eq!(p.src, q.src);
            prop_assert_eq!(p.dst, q.dst);
            prop_assert_eq!(&p.hops, &q.hops);
            prop_assert_eq!(p.reached, q.reached);
        }
        prop_assert_eq!(parsed.after.paths.len(), obs.after.paths.len());
    }

    #[test]
    fn feed_roundtrip(
        withdrawals in proptest::collection::vec((arb_addr(), any::<u32>(), 0u8..=32), 0..6),
        downs in proptest::collection::vec((arb_addr(), arb_addr()), 0..6),
    ) {
        let feed = RoutingFeed {
            withdrawals: withdrawals
                .into_iter()
                .map(|(a, p, len)| WithdrawalObs {
                    from_addr: a,
                    prefix: Prefix::new(Ipv4Addr::from(p), len),
                })
                .collect(),
            igp_link_down: downs
                .into_iter()
                .map(|(a, b)| IgpLinkDownObs { addr_a: a, addr_b: b })
                .collect(),
        };
        let parsed = parse_feed(&write_feed(&feed)).unwrap();
        prop_assert_eq!(parsed.withdrawals, feed.withdrawals);
        prop_assert_eq!(parsed.igp_link_down, feed.igp_link_down);
    }

    #[test]
    fn lg_roundtrip(
        answers in proptest::collection::vec(
            (0u32..50, arb_addr(), proptest::collection::vec(0u32..50, 0..5)),
            0..8,
        )
    ) {
        let mut lg = RecordedLookingGlass::new();
        for (from, dst, path) in &answers {
            lg.record(AsId(*from), *dst, path.iter().map(|&a| AsId(a)).collect());
        }
        let parsed = RecordedLookingGlass::parse(&lg.write()).unwrap();
        prop_assert_eq!(parsed.len(), lg.len());
        for (from, dst, path) in &answers {
            let expect: Vec<AsId> = path.iter().map(|&a| AsId(a)).collect();
            prop_assert_eq!(parsed.as_path(AsId(*from), *dst), Some(expect));
        }
    }
}
