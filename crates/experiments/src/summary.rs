//! Builds a single markdown digest out of the CSV files a figure run left
//! in the results directory (the `figures summary` subcommand).

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// The known result files, in presentation order, with one-line captions.
const SECTIONS: &[(&str, &str)] = &[
    (
        "fig5_placement_diagnosability",
        "Figure 5 — sensor placement vs diagnosability",
    ),
    (
        "fig6_tomo_sensitivity_links",
        "Figure 6 (top) — Tomo sensitivity CDF, 1/2/3 link failures",
    ),
    (
        "fig6_tomo_sensitivity_misconfig",
        "Figure 6 (bottom) — Tomo sensitivity CDF, misconfigurations",
    ),
    (
        "fig7_sensitivity_3link",
        "Figure 7 (top) — Tomo vs ND-edge, 3 link failures",
    ),
    (
        "fig7_sensitivity_misconfig_link",
        "Figure 7 (bottom) — Tomo vs ND-edge, misconfig + link",
    ),
    (
        "fig8_ndedge_specificity",
        "Figure 8 — ND-edge specificity CDF",
    ),
    (
        "fig9_diagnosability_vs_specificity",
        "Figure 9 — diagnosability vs specificity (scatter)",
    ),
    (
        "fig10_sensitivity_3link",
        "Figure 10 — ND-edge vs ND-bgpigp sensitivity",
    ),
    (
        "fig10_specificity_3link",
        "Figure 10 — ND-edge vs ND-bgpigp specificity",
    ),
    (
        "fig11_blocked_traceroutes",
        "Figure 11 — blocked traceroutes",
    ),
    (
        "fig12_looking_glass_fraction",
        "Figure 12 — Looking Glass availability",
    ),
    ("claims", "In-text claims, paper vs measured"),
    (
        "ablation_ndedge_weights",
        "Ablation — ND-edge scoring weights",
    ),
    (
        "ablation_greedy_vs_exact",
        "Ablation — greedy vs exact hitting set",
    ),
    ("robustness_sensor_sweep", "Robustness — sensor count"),
    ("robustness_observer_position", "Robustness — AS-X position"),
    (
        "robustness_tier2_style",
        "Robustness — tier-2 intradomain style",
    ),
    (
        "scalability_logical_links",
        "Scalability — logical-link graph size",
    ),
];

/// The known section stems (exposed so tests can check that every figure
/// regenerator's output is indexed here).
pub fn known_stems() -> Vec<&'static str> {
    SECTIONS.iter().map(|(stem, _)| *stem).collect()
}

/// Maximum data rows rendered per table (scatter files are huge).
const MAX_ROWS: usize = 24;

/// Renders one CSV as a markdown table (truncating long ones).
fn csv_to_markdown(csv: &str) -> String {
    let mut out = String::new();
    let mut lines = csv.lines();
    let Some(header) = lines.next() else {
        return out;
    };
    let cols = header.split(',').count();
    let _ = writeln!(out, "| {} |", header.replace(',', " | "));
    let _ = writeln!(out, "|{}", "---|".repeat(cols));
    let rows: Vec<&str> = lines.collect();
    for row in rows.iter().take(MAX_ROWS) {
        let _ = writeln!(out, "| {} |", row.replace(',', " | "));
    }
    if rows.len() > MAX_ROWS {
        let _ = writeln!(out, "\n*({} more rows in the CSV)*", rows.len() - MAX_ROWS);
    }
    out
}

/// Builds the digest from whatever CSVs exist under `dir`. Returns the
/// markdown text (also written to `dir/SUMMARY.md`).
pub fn build(dir: &Path) -> io::Result<String> {
    let mut out = String::from(
        "# Reproduction summary\n\nGenerated from the CSVs in this directory by \
         `figures summary`. See EXPERIMENTS.md for the paper-vs-measured\n\
         interpretation of every table.\n",
    );
    let mut found = 0;
    for (stem, caption) in SECTIONS {
        let path = dir.join(format!("{stem}.csv"));
        let Ok(csv) = fs::read_to_string(&path) else {
            continue;
        };
        found += 1;
        let _ = writeln!(out, "\n## {caption}\n");
        out.push_str(&csv_to_markdown(&csv));
    }
    if found == 0 {
        let _ = writeln!(out, "\n*(no result CSVs found — run `figures all` first)*");
    }
    fs::write(dir.join("SUMMARY.md"), &out)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_rendering_truncates() {
        let mut csv = String::from("a,b\n");
        for i in 0..40 {
            csv.push_str(&format!("{i},{i}\n"));
        }
        let md = csv_to_markdown(&csv);
        assert!(md.starts_with("| a | b |"));
        assert!(md.contains("more rows"));
        assert_eq!(md.matches('\n').count(), 2 + MAX_ROWS + 2);
    }

    #[test]
    fn build_writes_summary() {
        let dir = std::env::temp_dir().join("netdiag_summary_test");
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("claims.csv"), "claim,paper,measured\nx,1,1\n").unwrap();
        let md = build(&dir).unwrap();
        assert!(md.contains("In-text claims"));
        assert!(dir.join("SUMMARY.md").exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn build_handles_empty_dir() {
        let dir = std::env::temp_dir().join("netdiag_summary_empty");
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let md = build(&dir).unwrap();
        assert!(md.contains("no result CSVs"));
        let _ = fs::remove_dir_all(&dir);
    }
}
