//! Ablations of the design choices DESIGN.md calls out (beyond the paper's
//! own figures):
//!
//! * **scoring weights** — the ND-edge score is `a·|C(ℓ)| + b·|R(ℓ)|`
//!   with `a = b = 1` in the paper; the sweep shows what the reroute term
//!   actually buys (`b = 0` disables §3.2, `a = 0` keeps only reroutes);
//! * **greedy vs exact hitting set** — the paper argues the greedy
//!   approximation is good enough; comparing hypothesis sizes against the
//!   exact minimum on the real instances quantifies the gap.

use netdiagnoser::{BuildOptions, DiagnosticsConfig, Problem, Weights};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::bridge::{observations, TruthIpToAs};
use crate::figures::{collect_trials, FigureConfig, FigureOutput};
use crate::output::{f4, Table};
use crate::runner::{prepare_with, run_trial, RunConfig};
use crate::sampling::{sample_failure, FailureSpec};

/// The weight pairs swept.
pub const WEIGHTS: [(u32, u32); 5] = [(1, 0), (1, 1), (1, 2), (2, 1), (0, 1)];

/// Regenerates both ablation tables.
pub fn run(fc: &FigureConfig) -> Vec<FigureOutput> {
    vec![weight_sweep(fc), greedy_vs_exact(fc)]
}

/// Mean ND-edge sensitivity/specificity under 3 link failures, per weight
/// pair.
fn weight_sweep(fc: &FigureConfig) -> FigureOutput {
    let net = fc.internet();
    let mut table = Table::new(&["a", "b", "sensitivity", "specificity", "hypothesis_size"]);
    for (a, b) in WEIGHTS {
        let cfg = RunConfig {
            failure: FailureSpec::Links(3),
            diagnostics: DiagnosticsConfig {
                weights: Weights { a, b },
                ..Default::default()
            },
            ..Default::default()
        };
        let trials = collect_trials(&net, &cfg, fc);
        let n = trials.len().max(1) as f64;
        table.row(&[
            a.to_string(),
            b.to_string(),
            f4(trials.iter().map(|t| t.nd_edge.sensitivity).sum::<f64>() / n),
            f4(trials.iter().map(|t| t.nd_edge.specificity).sum::<f64>() / n),
            f4(trials
                .iter()
                .map(|t| t.nd_edge.hypothesis_size as f64)
                .sum::<f64>()
                / n),
        ]);
    }
    FigureOutput::new("ablation_ndedge_weights", table)
}

/// Greedy vs exact hypothesis sizes on real single/multi-failure
/// instances.
fn greedy_vs_exact(fc: &FigureConfig) -> FigureOutput {
    let net = fc.internet();
    let mut table = Table::new(&[
        "failure_links",
        "instances",
        "greedy_mean_size",
        "exact_mean_size",
        "greedy_optimal_fraction",
    ]);
    for x in [1usize, 2, 3] {
        let cfg = RunConfig {
            failure: FailureSpec::Links(x),
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(fc.base_seed ^ 0xAB1A);
        let mut greedy_sizes = Vec::new();
        let mut exact_sizes = Vec::new();
        for p in 0..fc.placements.min(3) {
            let mut prng = StdRng::seed_from_u64(fc.base_seed ^ (p as u64 + 77));
            let ctx = prepare_with(&net, &cfg, &mut prng, fc.recorder.clone());
            for _ in 0..fc.failures_per_placement.min(10) {
                // Reuse run_trial's sampling discipline but rebuild the
                // problem so the exact solver can run on it.
                let Some(tr) = run_trial(&ctx, &cfg, &mut rng) else {
                    continue;
                };
                let mut broken = ctx.sim.clone();
                netdiag_netsim::apply_failure(&mut broken, &tr.failure);
                let after = netdiag_netsim::probe_mesh(&broken, &ctx.sensors, &ctx.blocked);
                let obs = observations(&ctx.sensors, &ctx.mesh_before, &after);
                let topology = ctx.sim.topology();
                let ip2as = TruthIpToAs { topology };
                let problem = Problem::build(&obs, &ip2as, BuildOptions::nd_edge());
                let instance = problem.instance();
                let greedy = instance.greedy(Weights::default());
                let Some(exact) = instance.exact(greedy.hypothesis.len()) else {
                    continue; // unhittable or budget exhausted: skip
                };
                greedy_sizes.push(greedy.hypothesis.len());
                exact_sizes.push(exact.len());
            }
        }
        let n = greedy_sizes.len().max(1) as f64;
        let optimal = greedy_sizes
            .iter()
            .zip(&exact_sizes)
            .filter(|(g, e)| g == e)
            .count() as f64
            / n;
        table.row(&[
            x.to_string(),
            greedy_sizes.len().to_string(),
            f4(greedy_sizes.iter().sum::<usize>() as f64 / n),
            f4(exact_sizes.iter().sum::<usize>() as f64 / n),
            f4(optimal),
        ]);
        // `sample_failure` is exercised through run_trial above.
        let _ = sample_failure;
    }
    FigureOutput::new("ablation_greedy_vs_exact", table)
}
