//! **Figure 7** — sensitivity of Tomo vs ND-edge.
//!
//! Top graph: three simultaneous link failures. Bottom graph: one
//! misconfiguration plus one link failure. Expected shape: ND-edge's CDF
//! hugs sensitivity = 1 while Tomo's mass sits well below.

use crate::figures::{cdf_of, cdf_table, collect_trials, FigureConfig, FigureOutput};
use crate::runner::RunConfig;
use crate::sampling::FailureSpec;

/// Regenerates Figure 7.
pub fn run(fc: &FigureConfig) -> Vec<FigureOutput> {
    let net = fc.internet();

    let links3 = collect_trials(
        &net,
        &RunConfig {
            failure: FailureSpec::Links(3),
            ..Default::default()
        },
        fc,
    );
    let top = cdf_table(&[
        ("tomo_3link", &cdf_of(&links3, |t| t.tomo.sensitivity)),
        ("nd_edge_3link", &cdf_of(&links3, |t| t.nd_edge.sensitivity)),
    ]);

    let combined = collect_trials(
        &net,
        &RunConfig {
            failure: FailureSpec::MisconfigPlusLink,
            ..Default::default()
        },
        fc,
    );
    let bottom = cdf_table(&[
        (
            "tomo_misconfig_plus_link",
            &cdf_of(&combined, |t| t.tomo.sensitivity),
        ),
        (
            "nd_edge_misconfig_plus_link",
            &cdf_of(&combined, |t| t.nd_edge.sensitivity),
        ),
    ]);

    vec![
        FigureOutput::new("fig7_sensitivity_3link", top),
        FigureOutput::new("fig7_sensitivity_misconfig_link", bottom),
    ]
}
