//! **Figure 10** — ND-edge vs ND-bgpigp under three link failures.
//!
//! Two CDFs: sensitivity and specificity. Expected shape: identical
//! sensitivity; ND-bgpigp's specificity curve at or right of ND-edge's
//! (control-plane data only ever removes non-failed links).

use crate::figures::{cdf_of, cdf_table, collect_trials, FigureConfig, FigureOutput};
use crate::runner::RunConfig;
use crate::sampling::FailureSpec;

/// Regenerates Figure 10.
pub fn run(fc: &FigureConfig) -> Vec<FigureOutput> {
    let net = fc.internet();
    let trials = collect_trials(
        &net,
        &RunConfig {
            failure: FailureSpec::Links(3),
            ..Default::default()
        },
        fc,
    );
    let sensitivity = cdf_table(&[
        ("nd_edge", &cdf_of(&trials, |t| t.nd_edge.sensitivity)),
        ("nd_bgpigp", &cdf_of(&trials, |t| t.nd_bgpigp.sensitivity)),
    ]);
    let specificity = cdf_table(&[
        ("nd_edge", &cdf_of(&trials, |t| t.nd_edge.specificity)),
        ("nd_bgpigp", &cdf_of(&trials, |t| t.nd_bgpigp.specificity)),
    ]);
    vec![
        FigureOutput::new("fig10_sensitivity_3link", sensitivity),
        FigureOutput::new("fig10_specificity_3link", specificity),
    ]
}
