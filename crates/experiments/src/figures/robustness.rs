//! Robustness studies the paper summarizes without plots:
//!
//! * §4: "experiments with N ranging from 5 to 100 show similar trends" —
//!   the sensor-count sweep;
//! * §5.3: "the position of AS-X makes no difference to the sensitivity
//!   of ND-bgpigp. However, the specificity is either the same or higher
//!   when AS-X is at the core" — the observer-position study;
//! * §4's footnote that the algorithms are driven by the *inferred graph*
//!   rather than the raw topology — the tier-2 intradomain-style study
//!   (hub-and-spoke vs ring vs ladder).

use netdiag_topology::builders::{build_internet, InternetConfig, Tier2Style};

use crate::figures::{collect_trials, FigureConfig, FigureOutput};
use crate::output::{f4, Table};
use crate::runner::{ObserverPosition, RunConfig};
use crate::sampling::FailureSpec;

/// Sensor counts swept.
pub const SENSOR_COUNTS: [usize; 4] = [5, 10, 20, 50];

/// Regenerates the robustness tables.
pub fn run(fc: &FigureConfig) -> Vec<FigureOutput> {
    vec![sensor_sweep(fc), observer_position(fc), tier2_style(fc)]
}

/// Tomo vs ND-edge trends as the sensor count grows (2 link failures).
fn sensor_sweep(fc: &FigureConfig) -> FigureOutput {
    let net = fc.internet();
    let mut table = Table::new(&[
        "sensors",
        "tomo_sensitivity",
        "nd_edge_sensitivity",
        "nd_edge_specificity",
    ]);
    for &n in &SENSOR_COUNTS {
        let cfg = RunConfig {
            n_sensors: n,
            failure: FailureSpec::Links(2),
            ..Default::default()
        };
        let trials = collect_trials(&net, &cfg, fc);
        let count = trials.len().max(1) as f64;
        table.row(&[
            n.to_string(),
            f4(trials.iter().map(|t| t.tomo.sensitivity).sum::<f64>() / count),
            f4(trials.iter().map(|t| t.nd_edge.sensitivity).sum::<f64>() / count),
            f4(trials.iter().map(|t| t.nd_edge.specificity).sum::<f64>() / count),
        ]);
    }
    FigureOutput::new("robustness_sensor_sweep", table)
}

/// ND-bgpigp metrics per AS-X position (3 link failures).
fn observer_position(fc: &FigureConfig) -> FigureOutput {
    let net = fc.internet();
    let mut table = Table::new(&[
        "as_x_position",
        "nd_bgpigp_sensitivity",
        "nd_bgpigp_specificity",
    ]);
    for (label, observer) in [
        ("core", ObserverPosition::Core),
        ("tier2", ObserverPosition::Tier2),
        ("sensor_stub", ObserverPosition::SensorStub),
    ] {
        let cfg = RunConfig {
            observer,
            failure: FailureSpec::Links(3),
            ..Default::default()
        };
        let trials = collect_trials(&net, &cfg, fc);
        let count = trials.len().max(1) as f64;
        table.row(&[
            label.to_string(),
            f4(trials.iter().map(|t| t.nd_bgpigp.sensitivity).sum::<f64>() / count),
            f4(trials.iter().map(|t| t.nd_bgpigp.specificity).sum::<f64>() / count),
        ]);
    }
    FigureOutput::new("robustness_observer_position", table)
}

/// Tomo/ND-edge means per tier-2 intradomain style (2 link failures).
fn tier2_style(fc: &FigureConfig) -> FigureOutput {
    let mut table = Table::new(&[
        "tier2_style",
        "tomo_sensitivity",
        "nd_edge_sensitivity",
        "nd_edge_specificity",
    ]);
    for (label, style) in [
        ("hub_spoke", Tier2Style::HubSpoke),
        ("ring", Tier2Style::Ring),
        ("ladder", Tier2Style::Ladder),
    ] {
        let net = build_internet(&InternetConfig {
            tier2_style: style,
            seed: fc.topology_seed,
            ..InternetConfig::default()
        });
        let cfg = RunConfig {
            failure: FailureSpec::Links(2),
            ..Default::default()
        };
        let trials = collect_trials(&net, &cfg, fc);
        let count = trials.len().max(1) as f64;
        table.row(&[
            label.to_string(),
            f4(trials.iter().map(|t| t.tomo.sensitivity).sum::<f64>() / count),
            f4(trials.iter().map(|t| t.nd_edge.sensitivity).sum::<f64>() / count),
            f4(trials.iter().map(|t| t.nd_edge.specificity).sum::<f64>() / count),
        ]);
    }
    FigureOutput::new("robustness_tier2_style", table)
}
