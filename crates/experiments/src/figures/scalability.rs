//! Scalability of the logical-link graph (§3.1): the paper argues that
//! per-neighbor logical links keep the graph tractable ("as long as
//! sensors are not deployed in each AS in the Internet"). This study
//! measures the inferred-graph sizes and diagnosis runtimes as the sensor
//! count grows.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use netdiagnoser::{nd_edge, tomo, BuildOptions, Problem, Weights};

use crate::bridge::{observations, TruthIpToAs};
use crate::figures::{FigureConfig, FigureOutput};
use crate::output::{f4, Table};
use crate::runner::{prepare_with, RunConfig};
use crate::sampling::{sample_failure, FailureSpec};

/// Sensor counts swept.
pub const SENSOR_COUNTS: [usize; 5] = [5, 10, 20, 40, 80];

/// Regenerates the scalability table.
pub fn run(fc: &FigureConfig) -> Vec<FigureOutput> {
    let net = fc.internet();
    let mut table = Table::new(&[
        "sensors",
        "plain_edges",
        "logical_edges",
        "logical_blowup",
        "tomo_ms",
        "nd_edge_ms",
    ]);
    for &n in &SENSOR_COUNTS {
        let cfg = RunConfig {
            n_sensors: n,
            failure: FailureSpec::Links(1),
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(fc.base_seed ^ 0x5CA1E ^ n as u64);
        let ctx = prepare_with(&net, &cfg, &mut rng, fc.recorder.clone());
        // One representative unreachability-causing failure.
        let mut frng = StdRng::seed_from_u64(fc.base_seed ^ n as u64);
        let Some((obs, _)) = (0..50).find_map(|_| {
            let failure = sample_failure(
                &ctx.sim,
                &ctx.mesh_before,
                &ctx.sensors,
                cfg.failure,
                &mut frng,
            )?;
            let mut broken = ctx.sim.clone();
            netdiag_netsim::apply_failure(&mut broken, &failure);
            let after = netdiag_netsim::probe_mesh(&broken, &ctx.sensors, &ctx.blocked);
            (after.failed_count() > 0).then(|| {
                (
                    observations(&ctx.sensors, &ctx.mesh_before, &after),
                    failure,
                )
            })
        }) else {
            continue;
        };
        let topology = ctx.sim.topology();
        let ip2as = TruthIpToAs { topology };

        let plain = Problem::build(&obs, &ip2as, BuildOptions::tomo());
        let logical = Problem::build(&obs, &ip2as, BuildOptions::nd_edge());

        // lint: allow(nondet-source): this figure reports real elapsed time;
        // the timing is the measurement, it never feeds simulation state
        let t0 = Instant::now();
        let _ = tomo(&obs, &ip2as);
        let tomo_ms = t0.elapsed().as_secs_f64() * 1e3;
        // lint: allow(nondet-source): same as above — measured wall time
        let t1 = Instant::now();
        let _ = nd_edge(&obs, &ip2as, Weights::default());
        let nd_ms = t1.elapsed().as_secs_f64() * 1e3;

        table.row(&[
            n.to_string(),
            plain.graph.edge_count().to_string(),
            logical.graph.edge_count().to_string(),
            f4(logical.graph.edge_count() as f64 / plain.graph.edge_count().max(1) as f64),
            f4(tomo_ms),
            f4(nd_ms),
        ]);
    }
    vec![FigureOutput::new("scalability_logical_links", table)]
}
