//! **Figure 6** — sensitivity of plain Tomo under different failure
//! scenarios.
//!
//! Top graph: CDF of Tomo's sensitivity for 1, 2 and 3 simultaneous link
//! failures. Bottom graph: CDF for one router misconfiguration and for a
//! misconfiguration combined with a link failure. Expected shape: near-
//! perfect for single failures, sharply degraded for multiple failures,
//! near-zero for misconfigurations.

use crate::figures::{cdf_of, cdf_table, collect_trials, FigureConfig, FigureOutput};
use crate::runner::RunConfig;
use crate::sampling::FailureSpec;

/// Regenerates Figure 6 (two tables: the top and bottom graphs).
pub fn run(fc: &FigureConfig) -> Vec<FigureOutput> {
    let net = fc.internet();
    let trials_for = |spec| {
        collect_trials(
            &net,
            &RunConfig {
                failure: spec,
                ..Default::default()
            },
            fc,
        )
    };

    let links1 = trials_for(FailureSpec::Links(1));
    let links2 = trials_for(FailureSpec::Links(2));
    let links3 = trials_for(FailureSpec::Links(3));
    let top = cdf_table(&[
        ("tomo_1link", &cdf_of(&links1, |t| t.tomo.sensitivity)),
        ("tomo_2link", &cdf_of(&links2, |t| t.tomo.sensitivity)),
        ("tomo_3link", &cdf_of(&links3, |t| t.tomo.sensitivity)),
    ]);

    let misconfig = trials_for(FailureSpec::Misconfig);
    let combined = trials_for(FailureSpec::MisconfigPlusLink);
    let bottom = cdf_table(&[
        (
            "tomo_misconfig",
            &cdf_of(&misconfig, |t| t.tomo.sensitivity),
        ),
        (
            "tomo_misconfig_plus_link",
            &cdf_of(&combined, |t| t.tomo.sensitivity),
        ),
    ]);

    vec![
        FigureOutput::new("fig6_tomo_sensitivity_links", top),
        FigureOutput::new("fig6_tomo_sensitivity_misconfig", bottom),
    ]
}
