//! Figure regenerators: one module per results figure of the paper
//! (Figures 5–12), plus [`claims`], which checks the paper's in-text
//! numeric claims. Each regenerator returns named [`Table`]s with exactly
//! the rows/series the paper plots.

pub mod ablations;
pub mod claims;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod robustness;
pub mod scalability;

use netdiag_obs::RecorderHandle;
use rand::rngs::StdRng;
use rand::SeedableRng;

use netdiag_topology::builders::{build_internet, Internet, InternetConfig};

use crate::output::{Cdf, Table};
use crate::runner::{prepare_with, run_trial, RunConfig, TrialResult};

/// How much work a figure regeneration does.
#[derive(Clone, Debug)]
pub struct FigureConfig {
    /// Sensor placements per scenario (paper: 10).
    pub placements: usize,
    /// Failure trials per placement (paper: 100).
    pub failures_per_placement: usize,
    /// Seed of the generated topology.
    pub topology_seed: u64,
    /// Base seed for placements and failures.
    pub base_seed: u64,
    /// Instrumentation sink shared by every placement and trial (no-op by
    /// default).
    pub recorder: RecorderHandle,
}

impl Default for FigureConfig {
    fn default() -> Self {
        FigureConfig {
            placements: 10,
            failures_per_placement: 100,
            topology_seed: 1,
            base_seed: 7,
            recorder: RecorderHandle::noop(),
        }
    }
}

impl FigureConfig {
    /// A fast configuration for tests and benches (3 x 5 trials).
    pub fn quick() -> Self {
        FigureConfig {
            placements: 3,
            failures_per_placement: 5,
            ..Default::default()
        }
    }

    /// The evaluation topology.
    pub fn internet(&self) -> Internet {
        build_internet(&InternetConfig {
            seed: self.topology_seed,
            ..InternetConfig::default()
        })
    }
}

/// A named output table (written as `<name>.csv`).
#[derive(Clone, Debug)]
pub struct FigureOutput {
    /// File stem, e.g. `fig6_tomo_sensitivity`.
    pub name: String,
    /// The data.
    pub table: Table,
}

impl FigureOutput {
    /// Creates a named output.
    pub fn new(name: impl Into<String>, table: Table) -> Self {
        FigureOutput {
            name: name.into(),
            table,
        }
    }
}

/// Seed of the failure RNG for trial `t` of placement `p`. Every trial
/// owns an independent RNG derived from `(base_seed, placement, trial)`,
/// so trials may run on any thread in any order and still draw exactly
/// the same failures.
fn trial_seed(base_seed: u64, p: usize, t: usize) -> u64 {
    base_seed
        ^ 0xABCD
        ^ (p as u64).wrapping_mul(0x85EB_CA6B)
        ^ (t as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
}

/// Runs the paper's standard experiment loop for one scenario: `placements`
/// sensor placements, `failures_per_placement` unreachability-causing
/// failures each.
///
/// Placements and trials are independent (each has its own derived seed),
/// so both levels fan out across threads — one worker pool capped by
/// `available_parallelism` pulls trials from a shared queue; results are
/// assembled in `(placement, trial)` order, keeping the output
/// deterministic and identical to [`collect_trials_sequential`].
pub fn collect_trials(net: &Internet, cfg: &RunConfig, fc: &FigureConfig) -> Vec<TrialResult> {
    collect_trials_impl(net, cfg, fc, true)
}

/// Single-threaded reference implementation of [`collect_trials`]: same
/// seeds, same trial order, no worker pool. Exists so tests and benches can
/// check (and measure) that parallel collection changes nothing but
/// wall-clock time.
pub fn collect_trials_sequential(
    net: &Internet,
    cfg: &RunConfig,
    fc: &FigureConfig,
) -> Vec<TrialResult> {
    collect_trials_impl(net, cfg, fc, false)
}

fn collect_trials_impl(
    net: &Internet,
    cfg: &RunConfig,
    fc: &FigureConfig,
    parallel: bool,
) -> Vec<TrialResult> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    // Phase 1: prepare one context per placement (independent seeds).
    let prepare_one = |p: usize| -> crate::runner::PlacementContext {
        let _trial = netdiag_obs::trial_scope(p as u32, netdiag_obs::SETUP_TRIAL);
        let mut prng = StdRng::seed_from_u64(fc.base_seed ^ (p as u64).wrapping_mul(0x9E37_79B9));
        prepare_with(net, cfg, &mut prng, fc.recorder.clone())
    };
    let contexts: Vec<crate::runner::PlacementContext> =
        if parallel && threads > 1 && fc.placements > 1 {
            let prep = &prepare_one;
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..fc.placements)
                    .map(|p| scope.spawn(move || prep(p)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("placement worker panicked"))
                    .collect()
            })
        } else {
            (0..fc.placements).map(prepare_one).collect()
        };

    // Phase 2: run every (placement, trial) cell on the worker pool.
    let total = fc.placements * fc.failures_per_placement;
    let run_one = |idx: usize| -> Option<TrialResult> {
        let p = idx / fc.failures_per_placement;
        let t = idx % fc.failures_per_placement;
        let _trial = netdiag_obs::trial_scope(p as u32, t as u32);
        let mut rng = StdRng::seed_from_u64(trial_seed(fc.base_seed, p, t));
        run_trial(&contexts[p], cfg, &mut rng)
    };
    let workers = threads.min(total.max(1));
    let slots: Vec<Option<TrialResult>> = if !parallel || workers <= 1 {
        (0..total).map(run_one).collect()
    } else {
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<TrialResult>>> = (0..total).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    if idx >= total {
                        break;
                    }
                    let result = run_one(idx);
                    *slots[idx].lock().expect("trial slot poisoned") = result;
                });
            }
        });
        slots
            .into_iter()
            .map(|m| m.into_inner().expect("trial slot poisoned"))
            .collect()
    };
    slots.into_iter().flatten().collect()
}

/// Collects a metric from trials into a CDF.
pub fn cdf_of(trials: &[TrialResult], f: impl Fn(&TrialResult) -> f64) -> Cdf {
    Cdf::new(trials.iter().map(f).collect())
}

/// Grid resolution for CDF tables.
pub const CDF_STEPS: usize = 20;

/// Builds a CDF table with one `x` column and one column per named series.
pub fn cdf_table(series: &[(&str, &Cdf)]) -> Table {
    let mut header = vec!["x"];
    header.extend(series.iter().map(|(n, _)| *n));
    let mut table = Table::new(&header);
    for i in 0..=CDF_STEPS {
        let x = i as f64 / CDF_STEPS as f64;
        let mut row = vec![crate::output::f4(x)];
        row.extend(series.iter().map(|(_, c)| crate::output::f4(c.at(x))));
        table.row(&row);
    }
    table
}
