//! Figure regenerators: one module per results figure of the paper
//! (Figures 5–12), plus [`claims`], which checks the paper's in-text
//! numeric claims. Each regenerator returns named [`Table`]s with exactly
//! the rows/series the paper plots.

pub mod ablations;
pub mod claims;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod robustness;
pub mod scalability;

use netdiag_obs::{names, RecorderHandle};
use rand::rngs::StdRng;
use rand::SeedableRng;

use netdiag_topology::builders::{build_internet, Internet, InternetConfig};

use crate::output::{Cdf, Table};
use crate::runner::{
    prepare_with, run_trial_reference, run_trial_with, RunConfig, TrialResult, TrialScratch,
};

/// How much work a figure regeneration does.
#[derive(Clone, Debug)]
pub struct FigureConfig {
    /// Sensor placements per scenario (paper: 10).
    pub placements: usize,
    /// Failure trials per placement (paper: 100).
    pub failures_per_placement: usize,
    /// Seed of the generated topology.
    pub topology_seed: u64,
    /// Base seed for placements and failures.
    pub base_seed: u64,
    /// Worker threads for trial collection; `0` (the default) means
    /// available parallelism. The CLI `--threads` flag sets this.
    pub threads: usize,
    /// Instrumentation sink shared by every placement and trial (no-op by
    /// default).
    pub recorder: RecorderHandle,
}

impl Default for FigureConfig {
    fn default() -> Self {
        FigureConfig {
            placements: 10,
            failures_per_placement: 100,
            topology_seed: 1,
            base_seed: 7,
            threads: 0,
            recorder: RecorderHandle::noop(),
        }
    }
}

impl FigureConfig {
    /// A fast configuration for tests and benches (3 x 5 trials).
    pub fn quick() -> Self {
        FigureConfig {
            placements: 3,
            failures_per_placement: 5,
            ..Default::default()
        }
    }

    /// The evaluation topology.
    pub fn internet(&self) -> Internet {
        build_internet(&InternetConfig {
            seed: self.topology_seed,
            ..InternetConfig::default()
        })
    }
}

/// A named output table (written as `<name>.csv`).
#[derive(Clone, Debug)]
pub struct FigureOutput {
    /// File stem, e.g. `fig6_tomo_sensitivity`.
    pub name: String,
    /// The data.
    pub table: Table,
}

impl FigureOutput {
    /// Creates a named output.
    pub fn new(name: impl Into<String>, table: Table) -> Self {
        FigureOutput {
            name: name.into(),
            table,
        }
    }
}

/// Seed of the failure RNG for trial `t` of placement `p`. Every trial
/// owns an independent RNG derived from `(base_seed, placement, trial)`,
/// so trials may run on any thread in any order and still draw exactly
/// the same failures.
fn trial_seed(base_seed: u64, p: usize, t: usize) -> u64 {
    base_seed
        ^ 0xABCD
        ^ (p as u64).wrapping_mul(0x85EB_CA6B)
        ^ (t as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
}

/// The worker count a config resolves to: `fc.threads`, or available
/// parallelism when 0.
fn resolved_threads(fc: &FigureConfig) -> usize {
    if fc.threads > 0 {
        fc.threads
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// Phase 1 of a collection: one [`PlacementContext`](crate::runner::PlacementContext)
/// per placement, each from its own derived seed, prepared on up to
/// `threads` workers (preparation order does not matter — the seeds make
/// every context independent of scheduling).
fn prepare_contexts(
    net: &Internet,
    cfg: &RunConfig,
    fc: &FigureConfig,
    threads: usize,
) -> Vec<crate::runner::PlacementContext> {
    let prepare_one = |p: usize| -> crate::runner::PlacementContext {
        let _trial = netdiag_obs::trial_scope(p as u32, netdiag_obs::SETUP_TRIAL);
        let mut prng = StdRng::seed_from_u64(fc.base_seed ^ (p as u64).wrapping_mul(0x9E37_79B9));
        prepare_with(net, cfg, &mut prng, fc.recorder.clone())
    };
    if threads > 1 && fc.placements > 1 {
        let prep = &prepare_one;
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..fc.placements)
                .map(|p| scope.spawn(move || prep(p)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("placement worker panicked"))
                .collect()
        })
    } else {
        (0..fc.placements).map(prepare_one).collect()
    }
}

/// Runs the paper's standard experiment loop for one scenario: `placements`
/// sensor placements, `failures_per_placement` unreachability-causing
/// failures each — on the production path (incremental reconvergence,
/// per-worker persistent scratch simulators, per-placement replay memo).
///
/// Work is distributed as a work-stealing pool over placement x trial
/// units: worker `w` starts at placement `w % placements` and drains it
/// with one persistent [`TrialScratch`] (restores between trials are `Arc`
/// bumps; only a placement switch rebuilds the scratch), then steals
/// trials from the next placements (`trial.pool.steal` counts those).
/// Every trial owns an independent seeded RNG and writes to its
/// `(placement, trial)` slot, so the output is deterministic and identical
/// to [`collect_trials_sequential`] regardless of scheduling —
/// `tests/parallel_parity.rs` enforces exactly that.
pub fn collect_trials(net: &Internet, cfg: &RunConfig, fc: &FigureConfig) -> Vec<TrialResult> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    let threads = resolved_threads(fc);
    let contexts = prepare_contexts(net, cfg, fc, threads);

    let fpp = fc.failures_per_placement;
    let total = fc.placements * fpp;
    if total == 0 {
        return Vec::new();
    }
    let workers = threads.min(total);
    if workers <= 1 {
        // One worker: same loop without the pool machinery (placement
        // order, persistent scratch per placement).
        let mut out: Vec<Option<TrialResult>> = Vec::with_capacity(total);
        for (p, ctx) in contexts.iter().enumerate() {
            let mut scratch = TrialScratch::new(ctx);
            for t in 0..fpp {
                let _trial = netdiag_obs::trial_scope(p as u32, t as u32);
                let mut rng = StdRng::seed_from_u64(trial_seed(fc.base_seed, p, t));
                out.push(run_trial_with(ctx, cfg, &mut rng, &mut scratch));
            }
        }
        return out.into_iter().flatten().collect();
    }

    // Per-placement claim counters: a worker claims trial `t` of placement
    // `p` by incrementing `next[p]`. Draining one placement before moving
    // on keeps scratch simulators (and the replay memo's locality) warm.
    let next: Vec<AtomicUsize> = (0..fc.placements).map(|_| AtomicUsize::new(0)).collect();
    let slots: Vec<Mutex<Option<TrialResult>>> = (0..total).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for w in 0..workers {
            let next = &next;
            let slots = &slots;
            let contexts = &contexts;
            scope.spawn(move || {
                let home = w % fc.placements;
                let mut scratch: Option<(usize, TrialScratch)> = None;
                for off in 0..fc.placements {
                    let p = (home + off) % fc.placements;
                    loop {
                        let t = next[p].fetch_add(1, Ordering::Relaxed);
                        if t >= fpp {
                            break; // placement drained: move (steal) on
                        }
                        if off > 0 && fc.recorder.enabled() {
                            fc.recorder.add(names::TRIAL_POOL_STEAL, 1);
                        }
                        if scratch.as_ref().map(|(sp, _)| *sp) != Some(p) {
                            scratch = Some((p, TrialScratch::new(&contexts[p])));
                        }
                        let (_, sc) = scratch
                            .as_mut()
                            .expect("scratch installed for this placement");
                        let _trial = netdiag_obs::trial_scope(p as u32, t as u32);
                        let mut rng = StdRng::seed_from_u64(trial_seed(fc.base_seed, p, t));
                        let result = run_trial_with(&contexts[p], cfg, &mut rng, sc);
                        *slots[p * fpp + t].lock().expect("trial slot poisoned") = result;
                    }
                }
            });
        }
    });
    slots
        .into_iter()
        .filter_map(|m| m.into_inner().expect("trial slot poisoned"))
        .collect()
}

/// Single-threaded full-reconvergence baseline of [`collect_trials`]: same
/// derived seeds, same trial order, but every trial runs on
/// [`run_trial_reference`] (fresh clone + snapshot per trial, full IGP/BGP
/// reconvergence per attempt, no memo) — the frozen pre-incremental
/// behavior. Tests use it as the parity oracle; benches measure the
/// production pool against it.
pub fn collect_trials_sequential(
    net: &Internet,
    cfg: &RunConfig,
    fc: &FigureConfig,
) -> Vec<TrialResult> {
    let contexts = prepare_contexts(net, cfg, fc, 1);
    let mut out: Vec<Option<TrialResult>> =
        Vec::with_capacity(fc.placements * fc.failures_per_placement);
    for (p, ctx) in contexts.iter().enumerate() {
        for t in 0..fc.failures_per_placement {
            let _trial = netdiag_obs::trial_scope(p as u32, t as u32);
            let mut rng = StdRng::seed_from_u64(trial_seed(fc.base_seed, p, t));
            out.push(run_trial_reference(ctx, cfg, &mut rng));
        }
    }
    out.into_iter().flatten().collect()
}

/// Collects a metric from trials into a CDF.
pub fn cdf_of(trials: &[TrialResult], f: impl Fn(&TrialResult) -> f64) -> Cdf {
    Cdf::new(trials.iter().map(f).collect())
}

/// Grid resolution for CDF tables.
pub const CDF_STEPS: usize = 20;

/// Builds a CDF table with one `x` column and one column per named series.
pub fn cdf_table(series: &[(&str, &Cdf)]) -> Table {
    let mut header = vec!["x"];
    header.extend(series.iter().map(|(n, _)| *n));
    let mut table = Table::new(&header);
    for i in 0..=CDF_STEPS {
        let x = i as f64 / CDF_STEPS as f64;
        let mut row = vec![crate::output::f4(x)];
        row.extend(series.iter().map(|(_, c)| crate::output::f4(c.at(x))));
        table.row(&row);
    }
    table
}
