//! Figure regenerators: one module per results figure of the paper
//! (Figures 5–12), plus [`claims`], which checks the paper's in-text
//! numeric claims. Each regenerator returns named [`Table`]s with exactly
//! the rows/series the paper plots.

pub mod ablations;
pub mod claims;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod robustness;
pub mod scalability;

use netdiag_obs::RecorderHandle;
use rand::rngs::StdRng;
use rand::SeedableRng;

use netdiag_topology::builders::{build_internet, Internet, InternetConfig};

use crate::output::{Cdf, Table};
use crate::runner::{prepare_with, run_trial, RunConfig, TrialResult};

/// How much work a figure regeneration does.
#[derive(Clone, Debug)]
pub struct FigureConfig {
    /// Sensor placements per scenario (paper: 10).
    pub placements: usize,
    /// Failure trials per placement (paper: 100).
    pub failures_per_placement: usize,
    /// Seed of the generated topology.
    pub topology_seed: u64,
    /// Base seed for placements and failures.
    pub base_seed: u64,
    /// Instrumentation sink shared by every placement and trial (no-op by
    /// default).
    pub recorder: RecorderHandle,
}

impl Default for FigureConfig {
    fn default() -> Self {
        FigureConfig {
            placements: 10,
            failures_per_placement: 100,
            topology_seed: 1,
            base_seed: 7,
            recorder: RecorderHandle::noop(),
        }
    }
}

impl FigureConfig {
    /// A fast configuration for tests and benches (3 x 5 trials).
    pub fn quick() -> Self {
        FigureConfig {
            placements: 3,
            failures_per_placement: 5,
            ..Default::default()
        }
    }

    /// The evaluation topology.
    pub fn internet(&self) -> Internet {
        build_internet(&InternetConfig {
            seed: self.topology_seed,
            ..InternetConfig::default()
        })
    }
}

/// A named output table (written as `<name>.csv`).
#[derive(Clone, Debug)]
pub struct FigureOutput {
    /// File stem, e.g. `fig6_tomo_sensitivity`.
    pub name: String,
    /// The data.
    pub table: Table,
}

impl FigureOutput {
    /// Creates a named output.
    pub fn new(name: impl Into<String>, table: Table) -> Self {
        FigureOutput {
            name: name.into(),
            table,
        }
    }
}

/// Runs the paper's standard experiment loop for one scenario: `placements`
/// sensor placements, `failures_per_placement` unreachability-causing
/// failures each.
///
/// Placements are independent (each has its own seeds), so they run on
/// separate threads; results are concatenated in placement order, keeping
/// the output deterministic.
pub fn collect_trials(net: &Internet, cfg: &RunConfig, fc: &FigureConfig) -> Vec<TrialResult> {
    let one_placement = |p: usize| -> Vec<TrialResult> {
        let mut prng = StdRng::seed_from_u64(fc.base_seed ^ (p as u64).wrapping_mul(0x9E37_79B9));
        let ctx = prepare_with(net, cfg, &mut prng, fc.recorder.clone());
        let mut frng =
            StdRng::seed_from_u64(fc.base_seed ^ 0xABCD ^ (p as u64).wrapping_mul(0x85EB_CA6B));
        (0..fc.failures_per_placement)
            .filter_map(|_| run_trial(&ctx, cfg, &mut frng))
            .collect()
    };
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(fc.placements.max(1));
    if threads <= 1 || fc.placements <= 1 {
        return (0..fc.placements).flat_map(one_placement).collect();
    }
    let mut per_placement: Vec<Vec<TrialResult>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..fc.placements)
            .map(|p| scope.spawn(move || one_placement(p)))
            .collect();
        per_placement = handles
            .into_iter()
            .map(|h| h.join().expect("placement worker panicked"))
            .collect();
    });
    per_placement.into_iter().flatten().collect()
}

/// Collects a metric from trials into a CDF.
pub fn cdf_of(trials: &[TrialResult], f: impl Fn(&TrialResult) -> f64) -> Cdf {
    Cdf::new(trials.iter().map(f).collect())
}

/// Grid resolution for CDF tables.
pub const CDF_STEPS: usize = 20;

/// Builds a CDF table with one `x` column and one column per named series.
pub fn cdf_table(series: &[(&str, &Cdf)]) -> Table {
    let mut header = vec!["x"];
    header.extend(series.iter().map(|(n, _)| *n));
    let mut table = Table::new(&header);
    for i in 0..=CDF_STEPS {
        let x = i as f64 / CDF_STEPS as f64;
        let mut row = vec![crate::output::f4(x)];
        row.extend(series.iter().map(|(_, c)| crate::output::f4(c.at(x))));
        table.row(&row);
    }
    table
}
