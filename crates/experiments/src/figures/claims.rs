//! In-text numeric claims of the paper's evaluation, checked against this
//! reproduction (the data behind EXPERIMENTS.md's claims table).

use crate::figures::{cdf_of, collect_trials, FigureConfig, FigureOutput};
use crate::output::{f4, Table};
use crate::runner::RunConfig;
use crate::sampling::FailureSpec;

/// Checks every in-text claim and reports paper-vs-measured.
pub fn run(fc: &FigureConfig) -> Vec<FigureOutput> {
    let net = fc.internet();
    let mut table = Table::new(&["claim", "paper", "measured"]);

    // §5.1: Tomo sensitivity ~1 for single link failures.
    let links1 = collect_trials(
        &net,
        &RunConfig {
            failure: FailureSpec::Links(1),
            ..Default::default()
        },
        fc,
    );
    let tomo1 = cdf_of(&links1, |t| t.tomo.sensitivity);
    table.row(&[
        "tomo sensitivity=1 fraction, 1 link failure".into(),
        "~1.0".into(),
        f4(tomo1.fraction_perfect()),
    ]);

    // §5.1: Tomo sensitivity is zero in ~90% of misconfiguration runs.
    let misconfig = collect_trials(
        &net,
        &RunConfig {
            failure: FailureSpec::Misconfig,
            ..Default::default()
        },
        fc,
    );
    let tomo_mc = cdf_of(&misconfig, |t| t.tomo.sensitivity);
    table.row(&[
        "tomo sensitivity=0 fraction, misconfiguration".into(),
        "~0.9".into(),
        f4(tomo_mc.fraction_zero()),
    ]);

    // §5.2: ND-edge sensitivity ~1 for 3 link failures.
    let links3 = collect_trials(
        &net,
        &RunConfig {
            failure: FailureSpec::Links(3),
            ..Default::default()
        },
        fc,
    );
    table.row(&[
        "nd-edge mean sensitivity, 3 link failures".into(),
        "~1.0".into(),
        f4(cdf_of(&links3, |t| t.nd_edge.sensitivity).mean()),
    ]);

    // §5.2: ND-edge specificity > 0.9 for single link failures.
    table.row(&[
        "nd-edge mean specificity, 1 link failure".into(),
        ">0.9".into(),
        f4(cdf_of(&links1, |t| t.nd_edge.specificity).mean()),
    ]);

    // §5.2: misconfiguration specificity is higher than link-failure
    // specificity.
    table.row(&[
        "nd-edge mean specificity, misconfiguration".into(),
        ">1-link value".into(),
        f4(cdf_of(&misconfig, |t| t.nd_edge.specificity).mean()),
    ]);

    // §5.2: hypothesis set up to ~12 links for single link failures.
    let max_hyp = links1
        .iter()
        .map(|t| t.nd_edge.hypothesis_size)
        .max()
        .unwrap_or(0);
    table.row(&[
        "nd-edge max hypothesis size, 1 link failure".into(),
        "~12".into(),
        max_hyp.to_string(),
    ]);

    // §5.2: router failures detected in every run.
    let routers = collect_trials(
        &net,
        &RunConfig {
            failure: FailureSpec::Router,
            ..Default::default()
        },
        fc,
    );
    let detected = routers
        .iter()
        .filter(|t| t.router_detected == Some(true))
        .count();
    table.row(&[
        "nd-edge router failures detected".into(),
        "all".into(),
        format!("{detected}/{}", routers.len()),
    ]);

    // §5.2: AS-level diagnosis of ND-edge — no AS false negatives in >90%
    // of cases (AS-sensitivity = 1).
    let as_perfect = links1
        .iter()
        .filter(|t| t.nd_edge.as_sensitivity >= 1.0 - 1e-9)
        .count() as f64
        / links1.len().max(1) as f64;
    table.row(&[
        "nd-edge AS-sensitivity=1 fraction, 1 link failure".into(),
        ">0.9".into(),
        f4(as_perfect),
    ]);

    // §5.3: ND-bgpigp specificity >= ND-edge's.
    table.row(&[
        "nd-bgpigp mean specificity minus nd-edge, 3 link failures".into(),
        ">=0".into(),
        f4(cdf_of(&links3, |t| t.nd_bgpigp.specificity).mean()
            - cdf_of(&links3, |t| t.nd_edge.specificity).mean()),
    ]);

    // §5.4: with f_b = 0.8 and LGs everywhere, ND-LG AS-sensitivity ~0.8
    // while ND-bgpigp's is ~1 - f_b = 0.2.
    let blocked = collect_trials(
        &net,
        &RunConfig {
            failure: FailureSpec::Links(1),
            blocked_frac: 0.8,
            lg_frac: 1.0,
            ..Default::default()
        },
        fc,
    );
    let n = blocked.len().max(1) as f64;
    table.row(&[
        "nd-lg mean AS-sensitivity, f_b=0.8".into(),
        "~0.8".into(),
        f4(blocked
            .iter()
            .map(|t| {
                t.nd_lg
                    .map_or(t.nd_bgpigp.as_sensitivity, |e| e.as_sensitivity)
            })
            .sum::<f64>()
            / n),
    ]);
    table.row(&[
        "nd-bgpigp mean AS-sensitivity, f_b=0.8".into(),
        "~0.2 (1-f_b)".into(),
        f4(blocked
            .iter()
            .map(|t| t.nd_bgpigp.as_sensitivity)
            .sum::<f64>()
            / n),
    ]);

    vec![FigureOutput::new("claims", table)]
}
