//! **Figure 8** — specificity of ND-edge.
//!
//! CDF of ND-edge's specificity for a single link failure and for a single
//! router misconfiguration. Expected shape: specificity > 0.9 throughout,
//! with the misconfiguration curve strictly better (logical links let the
//! working paths exonerate physical links).

use crate::figures::{cdf_of, cdf_table, collect_trials, FigureConfig, FigureOutput};
use crate::runner::RunConfig;
use crate::sampling::FailureSpec;

/// Regenerates Figure 8.
pub fn run(fc: &FigureConfig) -> Vec<FigureOutput> {
    let net = fc.internet();
    let link = collect_trials(
        &net,
        &RunConfig {
            failure: FailureSpec::Links(1),
            ..Default::default()
        },
        fc,
    );
    let misconfig = collect_trials(
        &net,
        &RunConfig {
            failure: FailureSpec::Misconfig,
            ..Default::default()
        },
        fc,
    );
    let table = cdf_table(&[
        ("nd_edge_1link", &cdf_of(&link, |t| t.nd_edge.specificity)),
        (
            "nd_edge_misconfig",
            &cdf_of(&misconfig, |t| t.nd_edge.specificity),
        ),
    ]);
    vec![FigureOutput::new("fig8_ndedge_specificity", table)]
}
