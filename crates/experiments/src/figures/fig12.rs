//! **Figure 12** — the effect of Looking Glass availability.
//!
//! Mean AS-sensitivity of ND-LG as the fraction of ASes providing Looking
//! Glass servers grows from 5% to 100%, for `f_b` ∈ {0.25, 0.5, 0.75};
//! ND-bgpigp's (LG-independent) sensitivity drawn as horizontal baselines.
//! Expected shape: large gains from even a few LGs, diminishing returns
//! past ~50% coverage.

use crate::figures::{collect_trials, FigureConfig, FigureOutput};
use crate::output::{f4, Table};
use crate::runner::RunConfig;
use crate::sampling::FailureSpec;

/// The Looking-Glass availability grid.
pub const LG_FRACTIONS: [f64; 8] = [0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9, 1.0];

/// The blocking fractions of the three curves.
pub const BLOCKED_FRACTIONS: [f64; 3] = [0.25, 0.5, 0.75];

/// Regenerates Figure 12.
pub fn run(fc: &FigureConfig) -> Vec<FigureOutput> {
    let net = fc.internet();
    let mut table = Table::new(&[
        "lg_fraction",
        "nd_lg_fb25",
        "nd_lg_fb50",
        "nd_lg_fb75",
        "nd_bgpigp_fb25",
        "nd_bgpigp_fb50",
        "nd_bgpigp_fb75",
    ]);
    // ND-bgpigp baselines do not depend on LG availability; compute once
    // per f_b (at full LG coverage, which it ignores).
    let mut baselines = Vec::new();
    let mut lg_curves: Vec<Vec<f64>> = vec![Vec::new(); BLOCKED_FRACTIONS.len()];
    for (bi, &f_b) in BLOCKED_FRACTIONS.iter().enumerate() {
        for &lg_frac in &LG_FRACTIONS {
            let cfg = RunConfig {
                failure: FailureSpec::Links(1),
                blocked_frac: f_b,
                lg_frac,
                ..Default::default()
            };
            let trials = collect_trials(&net, &cfg, fc);
            let n = trials.len().max(1) as f64;
            let lg = trials
                .iter()
                .map(|t| {
                    t.nd_lg
                        .map_or(t.nd_bgpigp.as_sensitivity, |e| e.as_sensitivity)
                })
                .sum::<f64>()
                / n;
            lg_curves[bi].push(lg);
            if lg_frac == 1.0 {
                baselines.push(
                    trials
                        .iter()
                        .map(|t| t.nd_bgpigp.as_sensitivity)
                        .sum::<f64>()
                        / n,
                );
            }
        }
    }
    for (i, &lg_frac) in LG_FRACTIONS.iter().enumerate() {
        table.row(&[
            f4(lg_frac),
            f4(lg_curves[0][i]),
            f4(lg_curves[1][i]),
            f4(lg_curves[2][i]),
            f4(baselines[0]),
            f4(baselines[1]),
            f4(baselines[2]),
        ]);
    }
    vec![FigureOutput::new("fig12_looking_glass_fraction", table)]
}
