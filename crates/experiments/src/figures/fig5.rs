//! **Figure 5** — sensor placement vs diagnosability.
//!
//! The paper plots the diagnosability `D(G)` of the inferred graph as the
//! number of sensors grows, for four placement strategies. Expected shape:
//! "same AS" highest, "distant AS" low, "distant AS + split path" in
//! between, "random" worst.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::figures::{FigureConfig, FigureOutput};
use crate::output::{f4, Table};
use crate::placement::Placement;
use crate::runner::{prepare_with, RunConfig};

/// Sensor counts swept on the x axis.
pub const SENSOR_COUNTS: [usize; 6] = [5, 10, 20, 30, 40, 50];

/// Regenerates Figure 5.
pub fn run(fc: &FigureConfig) -> Vec<FigureOutput> {
    let net = fc.internet();
    let strategies = [
        ("same_as", Placement::SameAs),
        ("distant_as", Placement::DistantAs),
        ("distant_as_split", Placement::DistantAsSplit),
        ("random", Placement::Random),
    ];
    let mut table = Table::new(&[
        "sensors",
        "same_as",
        "distant_as",
        "distant_as_split",
        "random",
    ]);
    for &n in &SENSOR_COUNTS {
        let mut row = vec![n.to_string()];
        for (_, placement) in strategies {
            let cfg = RunConfig {
                n_sensors: n,
                placement,
                ..Default::default()
            };
            // Mean diagnosability over the placements.
            let mut sum = 0.0;
            for p in 0..fc.placements {
                let mut rng =
                    StdRng::seed_from_u64(fc.base_seed ^ (p as u64).wrapping_mul(0x9E37_79B9));
                let ctx = prepare_with(&net, &cfg, &mut rng, fc.recorder.clone());
                sum += ctx.diagnosability;
            }
            row.push(f4(sum / fc.placements as f64));
        }
        table.row(&row);
    }
    vec![FigureOutput::new("fig5_placement_diagnosability", table)]
}
