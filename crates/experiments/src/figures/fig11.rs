//! **Figure 11** — the effect of traceroute-blocking ASes.
//!
//! Mean AS-sensitivity and AS-specificity of ND-LG vs ND-bgpigp as the
//! fraction `f_b` of ASes that block traceroute grows from 0 to 0.8, with
//! every AS providing a Looking Glass. Single link failures. Expected
//! shape: ND-LG stays ≈ flat around 0.8; ND-bgpigp's AS-sensitivity decays
//! roughly as `1 − f_b`.

use crate::figures::{collect_trials, FigureConfig, FigureOutput};
use crate::output::{f4, Table};
use crate::runner::RunConfig;
use crate::sampling::FailureSpec;

/// The `f_b` grid.
pub const BLOCKED_FRACTIONS: [f64; 9] = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8];

/// Regenerates Figure 11.
pub fn run(fc: &FigureConfig) -> Vec<FigureOutput> {
    let net = fc.internet();
    let mut table = Table::new(&[
        "f_b",
        "nd_lg_as_sensitivity",
        "nd_lg_as_specificity",
        "nd_bgpigp_as_sensitivity",
        "nd_bgpigp_as_specificity",
    ]);
    for &f_b in &BLOCKED_FRACTIONS {
        let cfg = RunConfig {
            failure: FailureSpec::Links(1),
            blocked_frac: f_b,
            lg_frac: 1.0,
            ..Default::default()
        };
        let trials = collect_trials(&net, &cfg, fc);
        let n = trials.len().max(1) as f64;
        let mean =
            |f: &dyn Fn(&crate::runner::TrialResult) -> f64| trials.iter().map(f).sum::<f64>() / n;
        // With f_b = 0 there are no unidentified hops and ND-LG degenerates
        // to ND-bgpigp; report the latter's numbers for both.
        let lg_sens = mean(&|t| {
            t.nd_lg
                .map_or(t.nd_bgpigp.as_sensitivity, |e| e.as_sensitivity)
        });
        let lg_spec = mean(&|t| {
            t.nd_lg
                .map_or(t.nd_bgpigp.as_specificity, |e| e.as_specificity)
        });
        table.row(&[
            f4(f_b),
            f4(lg_sens),
            f4(lg_spec),
            f4(mean(&|t| t.nd_bgpigp.as_sensitivity)),
            f4(mean(&|t| t.nd_bgpigp.as_specificity)),
        ]);
    }
    vec![FigureOutput::new("fig11_blocked_traceroutes", table)]
}
