//! **Figure 9** — diagnosability vs specificity scatter.
//!
//! The paper varies the number of probing sources from 5 to 90 and plots,
//! per (placement, failure) pair, the diagnosability of the inferred graph
//! against ND-edge's specificity under single link failures. Expected
//! shape: specificity grows with diagnosability, always above ~0.75.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::figures::{FigureConfig, FigureOutput};
use crate::output::{f4, Table};
use crate::runner::{prepare_with, run_trial, RunConfig};
use crate::sampling::FailureSpec;

/// Sensor counts swept to span the diagnosability range.
pub const SENSOR_COUNTS: [usize; 6] = [5, 10, 20, 40, 60, 90];

/// Regenerates Figure 9 (one row per (placement, failure) pair).
pub fn run(fc: &FigureConfig) -> Vec<FigureOutput> {
    let net = fc.internet();
    let mut table = Table::new(&["sensors", "diagnosability", "nd_edge_specificity"]);
    // Spread the placement budget over the sensor counts.
    let per_count = fc.placements.div_ceil(2).max(1);
    let failures = (fc.failures_per_placement / 5).max(1);
    for &n in &SENSOR_COUNTS {
        let cfg = RunConfig {
            n_sensors: n,
            failure: FailureSpec::Links(1),
            ..Default::default()
        };
        for p in 0..per_count {
            let mut rng = StdRng::seed_from_u64(
                fc.base_seed ^ (n as u64) << 8 ^ (p as u64).wrapping_mul(0x9E37_79B9),
            );
            let ctx = prepare_with(&net, &cfg, &mut rng, fc.recorder.clone());
            let mut frng = StdRng::seed_from_u64(fc.base_seed ^ 0xF19 ^ (n as u64 * 31 + p as u64));
            for _ in 0..failures {
                if let Some(tr) = run_trial(&ctx, &cfg, &mut frng) {
                    table.row(&[
                        n.to_string(),
                        f4(ctx.diagnosability),
                        f4(tr.nd_edge.specificity),
                    ]);
                }
            }
        }
    }
    vec![FigureOutput::new(
        "fig9_diagnosability_vs_specificity",
        table,
    )]
}
