//! Output helpers: CDFs, means, and CSV emission for the figure
//! regenerators.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// An empirical CDF over `[0, 1]`-valued metrics.
#[derive(Clone, Debug, Default)]
pub struct Cdf {
    values: Vec<f64>,
}

impl Cdf {
    /// Builds the CDF from raw samples.
    pub fn new(mut values: Vec<f64>) -> Self {
        values.sort_by(|a, b| {
            a.partial_cmp(b)
                .expect("figure metrics are finite, never NaN")
        });
        Cdf { values }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// `P(X <= x)`.
    pub fn at(&self, x: f64) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        let n = self.values.partition_point(|&v| v <= x);
        n as f64 / self.values.len() as f64
    }

    /// The `q`-quantile (0 ≤ q ≤ 1).
    pub fn quantile(&self, q: f64) -> f64 {
        assert!(!self.values.is_empty(), "quantile of empty CDF");
        let idx =
            ((q * (self.values.len() - 1) as f64).round() as usize).min(self.values.len() - 1);
        self.values[idx]
    }

    /// Mean of the samples.
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// Fraction of samples equal to 1.0 (within epsilon) — "perfect" runs.
    pub fn fraction_perfect(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        let n = self.values.iter().filter(|&&v| v >= 1.0 - 1e-9).count();
        n as f64 / self.values.len() as f64
    }

    /// Fraction of samples equal to 0.0 — total misses.
    pub fn fraction_zero(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        let n = self.values.iter().filter(|&&v| v <= 1e-9).count();
        n as f64 / self.values.len() as f64
    }

    /// `(x, P(X <= x))` rows sampled on a fixed grid, for plotting.
    pub fn rows(&self, steps: usize) -> Vec<(f64, f64)> {
        (0..=steps)
            .map(|i| {
                let x = i as f64 / steps as f64;
                (x, self.at(x))
            })
            .collect()
    }
}

/// A simple CSV table writer.
#[derive(Clone, Debug)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column names.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Convenience: appends a row of display-formatted cells.
    pub fn rowf(&mut self, cells: &[&dyn std::fmt::Display]) {
        self.row(&cells.iter().map(|c| c.to_string()).collect::<Vec<String>>());
    }

    /// Renders as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.header.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }

    /// Renders as an aligned text table (for terminal output).
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", fmt_row(&self.header, &widths));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Writes the CSV to a file, creating parent directories.
    pub fn write_csv(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        fs::write(path, self.to_csv())
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// Formats a float with 4 decimals (CSV-friendly).
pub fn f4(x: f64) -> String {
    format!("{x:.4}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_basics() {
        let cdf = Cdf::new(vec![0.0, 0.5, 0.5, 1.0]);
        assert_eq!(cdf.len(), 4);
        assert_eq!(cdf.at(0.0), 0.25);
        assert_eq!(cdf.at(0.5), 0.75);
        assert_eq!(cdf.at(1.0), 1.0);
        assert_eq!(cdf.at(0.49), 0.25);
        assert_eq!(cdf.mean(), 0.5);
        assert_eq!(cdf.fraction_perfect(), 0.25);
        assert_eq!(cdf.fraction_zero(), 0.25);
    }

    #[test]
    fn cdf_quantiles() {
        let cdf = Cdf::new(vec![0.1, 0.2, 0.3, 0.4, 0.5]);
        assert_eq!(cdf.quantile(0.0), 0.1);
        assert_eq!(cdf.quantile(0.5), 0.3);
        assert_eq!(cdf.quantile(1.0), 0.5);
    }

    #[test]
    fn cdf_rows_grid() {
        let cdf = Cdf::new(vec![0.0, 1.0]);
        let rows = cdf.rows(2);
        assert_eq!(rows, vec![(0.0, 0.5), (0.5, 0.5), (1.0, 1.0)]);
    }

    #[test]
    fn table_csv_and_text() {
        let mut t = Table::new(&["x", "y"]);
        t.row(&["1".into(), "2".into()]);
        assert_eq!(t.to_csv(), "x,y\n1,2\n");
        assert!(t.to_text().contains('x'));
        assert_eq!(t.len(), 1);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_bad_rows() {
        let mut t = Table::new(&["x", "y"]);
        t.row(&["1".into()]);
    }
}
