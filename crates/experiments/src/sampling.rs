//! Failure sampling (§4, "Failure scenarios"): failures are drawn from the
//! *probed* part of the topology, exactly as the paper does ("we simulate
//! link failures by randomly breaking x links in E").

use std::collections::BTreeSet;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

use netdiag_bgp::ExportDeny;
use netdiag_netsim::{Failure, ProbeMesh, SensorSet, Sim};
use netdiag_topology::{LinkId, LinkKind, RouterId};

/// The failure classes evaluated in the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailureSpec {
    /// `x` simultaneous link failures (x ∈ {1, 2, 3} in the paper).
    Links(usize),
    /// One router failure (all attached links down).
    Router,
    /// One BGP export-filter misconfiguration.
    Misconfig,
    /// One misconfiguration plus one link failure.
    MisconfigPlusLink,
}

/// The distinct links appearing in a probe mesh, ascending — the failure
/// sampling universe ("we simulate link failures by randomly breaking x
/// links in E"). Hoisted out of [`sample_failure`] so a trial loop can
/// compute it once per placement instead of once per sampling attempt.
pub fn probed_links(mesh: &ProbeMesh) -> Vec<LinkId> {
    let set: BTreeSet<LinkId> = mesh.traceroutes.iter().flat_map(|t| t.links()).collect();
    set.into_iter().collect()
}

/// Samples a failure of the given class from the probed topology.
///
/// Returns `None` when the class cannot be instantiated (e.g. no suitable
/// misconfiguration target among probed inter-domain links).
pub fn sample_failure(
    sim: &Sim,
    mesh: &ProbeMesh,
    sensors: &SensorSet,
    spec: FailureSpec,
    rng: &mut StdRng,
) -> Option<Failure> {
    sample_failure_from(sim, &probed_links(mesh), mesh, sensors, spec, rng)
}

/// [`sample_failure`] with the probed-link universe precomputed (it must
/// equal `probed_links(mesh)`); draws are identical to [`sample_failure`].
pub fn sample_failure_from(
    sim: &Sim,
    probed: &[LinkId],
    mesh: &ProbeMesh,
    sensors: &SensorSet,
    spec: FailureSpec,
    rng: &mut StdRng,
) -> Option<Failure> {
    if probed.is_empty() {
        return None;
    }
    match spec {
        FailureSpec::Links(x) => {
            if probed.len() < x {
                return None;
            }
            let mut links = probed.to_vec();
            links.shuffle(rng);
            links.truncate(x);
            Some(Failure::Links(links))
        }
        FailureSpec::Router => {
            let attach: BTreeSet<RouterId> = sensors.sensors().iter().map(|s| s.router).collect();
            let routers: Vec<RouterId> = {
                let set: BTreeSet<RouterId> = mesh
                    .traceroutes
                    .iter()
                    .flat_map(|t| t.hops.iter().filter_map(|h| h.router()))
                    .filter(|r| !attach.contains(r))
                    .collect();
                set.into_iter().collect()
            };
            if routers.is_empty() {
                return None;
            }
            Some(Failure::Router(routers[rng.gen_range(0..routers.len())]))
        }
        FailureSpec::Misconfig => {
            sample_misconfig(sim, probed, sensors, rng).map(Failure::Misconfig)
        }
        FailureSpec::MisconfigPlusLink => {
            let denies = sample_misconfig(sim, probed, sensors, rng)?;
            let misconfig_link = sim
                .topology()
                .link_between(denies[0].at, denies[0].peer)
                .expect("deny endpoints are adjacent");
            let other: Vec<LinkId> = probed
                .iter()
                .copied()
                .filter(|&l| l != misconfig_link)
                .collect();
            if other.is_empty() {
                return None;
            }
            let link = other[rng.gen_range(0..other.len())];
            Some(Failure::Combined(vec![
                Failure::Misconfig(denies),
                Failure::Links(vec![link]),
            ]))
        }
    }
}

/// Picks a probed inter-domain link and builds a *per-neighbor* export
/// misconfiguration at one end: the target router stops announcing to the
/// peer every route it learned from one of its AS's neighbors (§4 chooses
/// "some route(s) from the routing table of the target router"; §3.1 notes
/// BGP policies — and hence misconfigurations — are set per neighbor).
///
/// The chosen neighbor group must matter: at least one of its prefixes is
/// currently routed by the peer through the target.
fn sample_misconfig(
    sim: &Sim,
    probed: &[LinkId],
    sensors: &SensorSet,
    rng: &mut StdRng,
) -> Option<Vec<ExportDeny>> {
    let topology = sim.topology();
    let mut inter: Vec<LinkId> = probed
        .iter()
        .copied()
        .filter(|&l| topology.link(l).kind == LinkKind::Inter)
        .collect();
    inter.shuffle(rng);

    let sensor_prefixes: Vec<_> = sensors
        .as_ids()
        .iter()
        .map(|&a| topology.as_node(a).prefix)
        .collect();

    for l in inter {
        let link = topology.link(l);
        // Try both orientations (which end is the misconfigured target).
        let mut ends = [(link.a, link.b), (link.b, link.a)];
        if rng.gen_bool(0.5) {
            ends.swap(0, 1);
        }
        for (target, peer) in ends {
            // Group the target's routes by the neighbor AS they were
            // learned from (the first AS-path element).
            let mut groups: std::collections::BTreeMap<netdiag_topology::AsId, Vec<_>> =
                Default::default();
            for &prefix in &sensor_prefixes {
                let Some(route) = sim.bgp().best_route(target, &prefix) else {
                    continue;
                };
                let Some(&via) = route.as_path.first() else {
                    continue; // locally originated: not an export candidate
                };
                groups.entry(via).or_default().push(prefix);
            }
            // A group is a valid misconfiguration if filtering it has any
            // effect: the peer routes at least one of its prefixes through
            // the target.
            let mut effective: Vec<(netdiag_topology::AsId, Vec<_>)> = groups
                .into_iter()
                .filter(|(_, prefixes)| {
                    prefixes.iter().any(|p| {
                        sim.bgp()
                            .best_route(peer, p)
                            .and_then(|r| r.learned_from)
                            .is_some_and(|(_, n)| n == target)
                    })
                })
                .collect();
            if effective.is_empty() {
                continue;
            }
            let (_, prefixes) = effective.swap_remove(rng.gen_range(0..effective.len()));
            return Some(
                prefixes
                    .into_iter()
                    .map(|prefix| ExportDeny {
                        at: target,
                        peer,
                        prefix,
                    })
                    .collect(),
            );
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use netdiag_netsim::probe_mesh;
    use netdiag_topology::builders::{build_internet, InternetConfig};
    use rand::SeedableRng;
    use std::sync::Arc;

    fn setup() -> (Sim, SensorSet, ProbeMesh) {
        let net = build_internet(&InternetConfig::small(21));
        let topology = Arc::new(net.topology.clone());
        let mut sim = Sim::new(Arc::clone(&topology));
        let spec: Vec<_> = net.stubs[..6]
            .iter()
            .map(|s| (s.as_id, s.routers[0]))
            .collect();
        let sensors = SensorSet::place(&topology, &spec);
        sensors.register(&mut sim);
        sim.converge_for(&sensors.as_ids());
        let mesh = probe_mesh(&sim, &sensors, &BTreeSet::new());
        (sim, sensors, mesh)
    }

    #[test]
    fn link_failures_come_from_probed_links() {
        let (sim, sensors, mesh) = setup();
        let probed: BTreeSet<LinkId> = mesh.traceroutes.iter().flat_map(|t| t.links()).collect();
        let mut rng = StdRng::seed_from_u64(5);
        for x in 1..=3 {
            let f = sample_failure(&sim, &mesh, &sensors, FailureSpec::Links(x), &mut rng)
                .expect("sampleable");
            let links = f.failed_links(&sim);
            assert_eq!(links.len(), x);
            assert!(links.iter().all(|l| probed.contains(l)));
        }
    }

    #[test]
    fn router_failure_avoids_sensor_attach_routers() {
        let (sim, sensors, mesh) = setup();
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..20 {
            let f = sample_failure(&sim, &mesh, &sensors, FailureSpec::Router, &mut rng)
                .expect("sampleable");
            let Failure::Router(r) = f else { panic!() };
            assert!(sensors.sensors().iter().all(|s| s.router != r));
        }
    }

    #[test]
    fn misconfig_targets_effective_route() {
        let (sim, sensors, mesh) = setup();
        let mut rng = StdRng::seed_from_u64(7);
        let f = sample_failure(&sim, &mesh, &sensors, FailureSpec::Misconfig, &mut rng)
            .expect("sampleable");
        let Failure::Misconfig(rules) = &f else {
            panic!()
        };
        let rule = rules[0];
        // The peer really does learn the prefix from the target.
        let learned = sim
            .bgp()
            .best_route(rule.peer, &rule.prefix)
            .and_then(|r| r.learned_from)
            .unwrap();
        assert_eq!(learned.1, rule.at);
    }

    #[test]
    fn misconfig_plus_link_has_two_sites() {
        let (sim, sensors, mesh) = setup();
        let mut rng = StdRng::seed_from_u64(8);
        let f = sample_failure(
            &sim,
            &mesh,
            &sensors,
            FailureSpec::MisconfigPlusLink,
            &mut rng,
        )
        .expect("sampleable");
        assert_eq!(f.all_failure_sites(&sim).len(), 2);
    }

    #[test]
    fn sampling_is_deterministic() {
        let (sim, sensors, mesh) = setup();
        let f1 = sample_failure(
            &sim,
            &mesh,
            &sensors,
            FailureSpec::Links(2),
            &mut StdRng::seed_from_u64(9),
        );
        let f2 = sample_failure(
            &sim,
            &mesh,
            &sensors,
            FailureSpec::Links(2),
            &mut StdRng::seed_from_u64(9),
        );
        assert_eq!(f1, f2);
    }
}
