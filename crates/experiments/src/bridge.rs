//! Conversions from simulator outputs to diagnoser inputs, plus the two
//! oracles (IP-to-AS, Looking Glass) implemented from simulation state.
//!
//! This is the only place where simulator types meet diagnoser types; the
//! diagnoser itself never sees ground truth.

use std::net::Ipv4Addr;

use netdiag_netsim::{looking_glass_query, ProbeHop, ProbeMesh, SensorSet, Sim, Traceroute};
use netdiag_topology::{AsId, Topology};
use netdiagnoser::{
    Hop, IgpLinkDownObs, IpToAs, LookingGlass, Observations, ProbePath, RoutingFeed, SensorMeta,
    Snapshot, WithdrawalObs,
};
use std::collections::BTreeSet;

/// Converts a simulated traceroute to the diagnoser's view (addresses and
/// stars only; ground truth stripped).
pub fn to_probe_path(tr: &Traceroute) -> ProbePath {
    ProbePath {
        src: tr.src,
        dst: tr.dst,
        hops: tr
            .hops
            .iter()
            .map(|h| match h {
                ProbeHop::Addr { addr, .. } | ProbeHop::Dest { addr } => Hop::Addr(*addr),
                ProbeHop::Star { .. } => Hop::Star,
            })
            .collect(),
        reached: tr.reached,
    }
}

/// Converts a full probe mesh to a snapshot.
pub fn to_snapshot(mesh: &ProbeMesh) -> Snapshot {
    Snapshot {
        paths: mesh.traceroutes.iter().map(to_probe_path).collect(),
    }
}

/// Builds the sensor directory the troubleshooter knows.
pub fn sensor_metas(sensors: &SensorSet) -> Vec<SensorMeta> {
    sensors
        .sensors()
        .iter()
        .map(|s| SensorMeta {
            id: s.id,
            addr: s.addr,
            as_id: s.as_id,
        })
        .collect()
}

/// Assembles the probe observations from two meshes.
pub fn observations(sensors: &SensorSet, before: &ProbeMesh, after: &ProbeMesh) -> Observations {
    Observations {
        sensors: sensor_metas(sensors),
        before: to_snapshot(before),
        after: to_snapshot(after),
    }
}

/// Builds AS-X's control-plane feed from what the simulator recorded during
/// reconvergence.
///
/// * eBGP withdrawals received by AS-X routers become [`WithdrawalObs`]
///   carrying the sending neighbor's interface address on the shared link
///   (which is how the operator identifies the neighbor);
/// * IGP link-down events inside AS-X become [`IgpLinkDownObs`] with the
///   failed link's two interface addresses.
pub fn routing_feed(
    topology: &Topology,
    observer: AsId,
    observed: &[netdiag_bgp::ObservedMsg],
    igp_events: &[netdiag_netsim::IgpLinkDown],
) -> RoutingFeed {
    let withdrawals = observed
        .iter()
        .filter(|m| m.kind == netdiag_bgp::ObservedKind::Withdraw)
        .filter_map(|m| {
            let link = topology.link_between(m.at, m.from)?;
            Some(WithdrawalObs {
                from_addr: topology.link(link).addr_of(m.from),
                prefix: m.prefix,
            })
        })
        .collect();
    let igp_link_down = igp_events
        .iter()
        .filter(|e| e.as_id == observer)
        .map(|e| {
            let l = topology.link(e.link);
            IgpLinkDownObs {
                addr_a: l.addr_a,
                addr_b: l.addr_b,
            }
        })
        .collect();
    RoutingFeed {
        withdrawals,
        igp_link_down,
    }
}

/// Ground-truth IP-to-AS mapping (the paper assumes an accurate mapping
/// service; this models exactly that assumption).
pub struct TruthIpToAs<'a> {
    /// The topology providing ground truth.
    pub topology: &'a Topology,
}

impl IpToAs for TruthIpToAs<'_> {
    fn as_of(&self, addr: Ipv4Addr) -> Option<AsId> {
        self.topology.as_of_ip(addr)
    }
}

/// Looking Glass service backed by the post-failure simulator state, with a
/// configurable set of ASes that actually provide a Looking Glass.
pub struct SimLookingGlass<'a> {
    /// The (post-failure) simulator whose BGP state answers queries.
    pub sim: &'a Sim,
    /// ASes offering a Looking Glass server.
    pub available: &'a BTreeSet<AsId>,
}

impl LookingGlass for SimLookingGlass<'_> {
    fn as_path(&self, from_as: AsId, dst: Ipv4Addr) -> Option<Vec<AsId>> {
        if !self.available.contains(&from_as) {
            return None;
        }
        looking_glass_query(self.sim, from_as, dst)
    }
}
