//! `netdiag` — command-line front end to the NetDiagnoser reproduction.
//!
//! ```text
//! netdiag simulate --out DIR [--seed N] [--sensors N] [--failure SPEC]
//!                  [--blocked FRAC] [--lg FRAC] [--topology FILE]
//!     SPEC: links:<x> | router | misconfig | misconfig+link
//!     Generates the 165-AS topology — or loads one from FILE in the
//!     plain-text format (`netdiag_topology::text`) — injects a failure,
//!     and writes the
//!     troubleshooter's view to DIR: sensors.txt, before.txt, after.txt,
//!     feed.txt, lg.txt, ip2as.txt — plus truth.txt (ground truth, for
//!     checking answers).
//!
//! netdiag diagnose --dir DIR [--algo tomo|nd-edge|nd-bgpigp|nd-lg]
//!     Reads a scenario directory and prints the diagnosis report.
//! ```
//!
//! Both subcommands accept `--profile FILE`: instrumentation counters and
//! phase timings of the run (SPF runs, BGP messages, probes, greedy
//! iterations, …) are written to FILE as a JSON run report.

// A runnable demo talks to its user on stdout.
#![allow(clippy::print_stdout)]
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::fs;
use std::net::Ipv4Addr;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use netdiag_experiments::bridge::{observations, routing_feed};
use netdiag_experiments::runner::{prepare_with, RunConfig};
use netdiag_experiments::sampling::{sample_failure, FailureSpec};
use netdiag_netsim::{apply_failure, looking_glass_query, probe_mesh};
use netdiag_obs::{InMemoryRecorder, RecorderHandle};
use netdiag_topology::AsId;
use netdiagnoser::text::{parse_feed, parse_observations, RecordedLookingGlass};
use netdiagnoser::{report, Algorithm, IpToAs, NetDiagnoser};

fn usage() -> ! {
    eprintln!(
        "usage:\n  netdiag simulate --out DIR [--seed N] [--sensors N] \
         [--failure links:<x>|router|misconfig|misconfig+link] [--blocked FRAC] [--lg FRAC] \
         [--topology FILE] [--profile FILE]\n  \
         netdiag diagnose --dir DIR [--algo tomo|nd-edge|nd-bgpigp|nd-lg] [--profile FILE]"
    );
    std::process::exit(2)
}

/// The recorder for a run: in-memory when `--profile` was given, else the
/// free no-op.
fn profile_recorder(args: &[String]) -> (RecorderHandle, Option<(PathBuf, Arc<InMemoryRecorder>)>) {
    match get_flag(args, "--profile") {
        Some(path) => {
            let (handle, sink) = RecorderHandle::in_memory();
            (handle, Some((PathBuf::from(path), sink)))
        }
        None => (RecorderHandle::noop(), None),
    }
}

/// Writes the JSON run report when `--profile` was given.
fn write_profile(profile: Option<(PathBuf, Arc<InMemoryRecorder>)>) -> Result<(), ExitCode> {
    if let Some((path, sink)) = profile {
        fs::write(&path, sink.report().to_json()).map_err(|e| {
            eprintln!("cannot write {}: {e}", path.display());
            ExitCode::FAILURE
        })?;
    }
    Ok(())
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("simulate") => simulate(args.collect()),
        Some("diagnose") => diagnose(args.collect()),
        _ => usage(),
    }
}

fn get_flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn simulate(args: Vec<String>) -> ExitCode {
    let out = PathBuf::from(get_flag(&args, "--out").unwrap_or_else(|| usage()));
    let seed: u64 = get_flag(&args, "--seed").map_or(1, |v| v.parse().unwrap_or_else(|_| usage()));
    let sensors_n: usize =
        get_flag(&args, "--sensors").map_or(10, |v| v.parse().unwrap_or_else(|_| usage()));
    let blocked: f64 =
        get_flag(&args, "--blocked").map_or(0.0, |v| v.parse().unwrap_or_else(|_| usage()));
    let lg_frac: f64 =
        get_flag(&args, "--lg").map_or(1.0, |v| v.parse().unwrap_or_else(|_| usage()));
    let failure_spec = match get_flag(&args, "--failure").as_deref() {
        None => FailureSpec::Links(1),
        Some("router") => FailureSpec::Router,
        Some("misconfig") => FailureSpec::Misconfig,
        Some("misconfig+link") => FailureSpec::MisconfigPlusLink,
        Some(s) => match s.strip_prefix("links:").and_then(|x| x.parse().ok()) {
            Some(x) => FailureSpec::Links(x),
            None => usage(),
        },
    };

    let net = match get_flag(&args, "--topology") {
        None => netdiag_topology::builders::build_internet(
            &netdiag_topology::builders::InternetConfig {
                seed,
                ..Default::default()
            },
        ),
        Some(file) => {
            let text = match fs::read_to_string(&file) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("cannot read {file}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let topology = match netdiag_topology::text::parse_topology(&text) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("topology parse error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let net = netdiag_topology::builders::Internet::from_topology(topology);
            if net.cores.is_empty() || net.stubs.len() < 2 {
                eprintln!(
                    "custom topology needs at least one core AS (the troubleshooter)                      and two stub ASes (sensor hosts)"
                );
                return ExitCode::FAILURE;
            }
            net
        }
    };
    let sensors_n = sensors_n.min(net.stubs.len());
    let cfg = RunConfig {
        n_sensors: sensors_n,
        failure: failure_spec,
        blocked_frac: blocked,
        lg_frac,
        ..Default::default()
    };
    let mut rng = StdRng::seed_from_u64(seed ^ 0xBEEF);
    let (recorder, profile) = profile_recorder(&args);
    let ctx = prepare_with(&net, &cfg, &mut rng, recorder);
    let topology = ctx.sim.topology();

    // Draw failures until one causes unreachability.
    let mut frng = StdRng::seed_from_u64(seed ^ 0xF00D);
    let (failure, broken, after) = loop {
        let Some(failure) = sample_failure(
            &ctx.sim,
            &ctx.mesh_before,
            &ctx.sensors,
            cfg.failure,
            &mut frng,
        ) else {
            eprintln!("no failure of that class is sampleable here");
            return ExitCode::FAILURE;
        };
        let mut broken = ctx.sim.clone();
        apply_failure(&mut broken, &failure);
        let after = probe_mesh(&broken, &ctx.sensors, &ctx.blocked);
        if after.failed_count() > 0 {
            break (failure, broken, after);
        }
    };

    let mut broken = broken;
    let observed = broken.take_observed();
    let igp_events = broken.take_igp_events();
    let obs = observations(&ctx.sensors, &ctx.mesh_before, &after);
    let feed = routing_feed(topology, ctx.observer, &observed, &igp_events);

    // Record pre-failure Looking Glass answers for every (available AS,
    // destination) pair.
    let mut lg = RecordedLookingGlass::new();
    for &a in &ctx.lg_available {
        for s in ctx.sensors.sensors() {
            if let Some(path) = looking_glass_query(&ctx.sim, a, s.addr) {
                lg.record(a, s.addr, path);
            }
        }
    }

    // IP-to-AS mapping restricted to observed addresses.
    let mut ip2as_text = String::from("# ip2as <addr> <as>\n");
    let mut seen: BTreeSet<Ipv4Addr> = BTreeSet::new();
    for snap in [&obs.before, &obs.after] {
        for p in &snap.paths {
            for h in &p.hops {
                if let netdiagnoser::Hop::Addr(a) = h {
                    if seen.insert(*a) {
                        if let Some(asn) = topology.as_of_ip(*a) {
                            let _ = writeln!(ip2as_text, "ip2as {a} {}", asn.0);
                        }
                    }
                }
            }
        }
    }

    // Ground truth for checking answers.
    let mut truth = String::from("# failed links as interface address pairs\n");
    for l in failure.all_failure_sites(&ctx.sim) {
        let link = topology.link(l);
        let _ = writeln!(truth, "failed {} {}", link.addr_a, link.addr_b);
    }

    // A Graphviz rendering with the failure sites highlighted.
    let dot = netdiag_topology::export::to_dot(
        topology,
        &netdiag_topology::export::DotOptions {
            highlight: failure.all_failure_sites(&ctx.sim).into_iter().collect(),
            hide_stubs: true,
        },
    );

    if let Err(e) = fs::create_dir_all(&out) {
        eprintln!("cannot create {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    let (sensors_txt, before_txt, after_txt) = netdiagnoser::text::write_observations(&obs);
    let files = [
        ("sensors.txt", sensors_txt),
        ("before.txt", before_txt),
        ("after.txt", after_txt),
        ("feed.txt", netdiagnoser::text::write_feed(&feed)),
        ("lg.txt", lg.write()),
        ("ip2as.txt", ip2as_text),
        ("truth.txt", truth),
        ("topology.dot", dot),
    ];
    for (name, contents) in files {
        if let Err(e) = fs::write(out.join(name), contents) {
            eprintln!("cannot write {name}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Err(code) = write_profile(profile) {
        return code;
    }
    println!(
        "scenario written to {} ({} failed paths, {} observed messages)",
        out.display(),
        after.failed_count(),
        observed.len()
    );
    ExitCode::SUCCESS
}

/// IP-to-AS service parsed from `ip2as.txt`.
struct FileIpToAs {
    map: BTreeMap<Ipv4Addr, AsId>,
}

impl FileIpToAs {
    fn parse(text: &str) -> Self {
        let mut map = BTreeMap::new();
        for line in text.lines() {
            let parts: Vec<&str> = line.split_whitespace().collect();
            if let ["ip2as", addr, asn] = parts.as_slice() {
                if let (Ok(a), Ok(n)) = (addr.parse(), asn.parse()) {
                    map.insert(a, AsId(n));
                }
            }
        }
        FileIpToAs { map }
    }
}

impl IpToAs for FileIpToAs {
    fn as_of(&self, addr: Ipv4Addr) -> Option<AsId> {
        self.map.get(&addr).copied()
    }
}

fn read(dir: &Path, name: &str) -> Result<String, ExitCode> {
    fs::read_to_string(dir.join(name)).map_err(|e| {
        eprintln!("cannot read {}: {e}", dir.join(name).display());
        ExitCode::FAILURE
    })
}

fn diagnose(args: Vec<String>) -> ExitCode {
    let dir = PathBuf::from(get_flag(&args, "--dir").unwrap_or_else(|| usage()));
    let algo = get_flag(&args, "--algo").unwrap_or_else(|| "nd-edge".into());

    let (sensors, before, after, feed_txt, lg_txt, ip2as_txt) = match (
        read(&dir, "sensors.txt"),
        read(&dir, "before.txt"),
        read(&dir, "after.txt"),
        read(&dir, "feed.txt"),
        read(&dir, "lg.txt"),
        read(&dir, "ip2as.txt"),
    ) {
        (Ok(a), Ok(b), Ok(c), Ok(d), Ok(e), Ok(f)) => (a, b, c, d, e, f),
        _ => return ExitCode::FAILURE,
    };
    let obs = match parse_observations(&sensors, &before, &after) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("parse error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let feed = match parse_feed(&feed_txt) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("feed parse error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let lg = match RecordedLookingGlass::parse(&lg_txt) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("lg parse error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let ip2as = FileIpToAs::parse(&ip2as_txt);

    let Ok(algorithm) = algo.parse::<Algorithm>() else {
        usage()
    };
    let (recorder, profile) = profile_recorder(&args);
    let diagnosis = match NetDiagnoser::builder()
        .algorithm(algorithm)
        .routing_feed(&feed)
        .looking_glass(&lg)
        .recorder(recorder)
        .build()
        .diagnose(&obs, &ip2as)
    {
        Ok(d) => d,
        Err(e) => {
            eprintln!("diagnosis failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(code) = write_profile(profile) {
        return code;
    }
    // Write through a fallible sink: a closed pipe (e.g. `| head`) must
    // end the program quietly, not panic.
    let mut out = String::new();
    out.push_str(&report::render(&diagnosis));
    if let Ok(truth) = read(&dir, "truth.txt") {
        out.push_str("--- ground truth (truth.txt) ---\n");
        for line in truth.lines().filter(|l| l.starts_with("failed")) {
            out.push_str(line);
            out.push('\n');
        }
    }
    use std::io::Write as _;
    let _ = std::io::stdout().write_all(out.as_bytes());
    ExitCode::SUCCESS
}
