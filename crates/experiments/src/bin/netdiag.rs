//! `netdiag` — command-line front end to the NetDiagnoser reproduction.
//!
//! ```text
//! netdiag simulate --out DIR [--seed N] [--sensors N] [--failure SPEC]
//!                  [--blocked FRAC] [--lg FRAC] [--topology FILE]
//!     SPEC: links:<x> | router | misconfig | misconfig+link
//!     Generates the 165-AS topology — or loads one from FILE in the
//!     plain-text format (`netdiag_topology::text`) — injects a failure,
//!     and writes the
//!     troubleshooter's view to DIR: sensors.txt, before.txt, after.txt,
//!     feed.txt, lg.txt, ip2as.txt — plus truth.txt (ground truth, for
//!     checking answers).
//!
//! netdiag diagnose --dir DIR [--algo tomo|nd-edge|nd-bgpigp|nd-lg]
//!                  [--json] [--min-confidence F] [--max-issues N]
//!     Reads a scenario directory and prints the diagnosis report —
//!     the flat text by default, or the versioned `DiagnosticReport`
//!     JSON with `--json`. The threshold flags feed the report's
//!     `DiagnosticsConfig` (drop weak findings, cap the issue list).
//!
//! netdiag explain TRACE.jsonl [--placement P] [--trial N] [--algo A]
//!     Replays a `--trace` event log into a per-hypothesis causal
//!     narrative for one trial.
//!
//! netdiag trials [--placements N] [--failures N] [--seed N]
//!                [--failure SPEC] [--blocked FRAC] [--lg FRAC]
//!                [--threads N]
//!     Runs the paper's placement x failure experiment loop on the trial
//!     worker pool and prints per-algorithm accuracy means. `--threads`
//!     caps the pool (default: available parallelism).
//!
//! netdiag gen --ases N [--seed N] [--tier1 N] [--transit-frac F]
//!             [--multihoming F] [--peering F] [--converge] [--threads N]
//!             [--json]
//!     Generates a seeded internet-scale topology (power-law provider
//!     degrees, tier-1 clique, Gao-Rexford tiering) and prints its shape.
//!     With `--converge` it builds the simulator, converges the full RIB
//!     (sharded over `--threads` workers when > 1) and reports wall
//!     times, message counts and peak RSS — `--json` emits the same as
//!     one machine-readable line (consumed by scripts/bench.sh).
//! ```
//!
//! `simulate` and `diagnose` accept `--profile FILE` (instrumentation
//! counters and phase timings as a JSON run report), `--trace FILE`
//! (structured JSONL event log, replayable with `explain`) and
//! `--trace-chrome FILE` (the same events as Chrome-trace JSON, loadable
//! in Perfetto / `chrome://tracing`).

// A runnable demo talks to its user on stdout.
#![allow(clippy::print_stdout)]
use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::fs;
use std::net::Ipv4Addr;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use netdiag_experiments::bridge::{observations, routing_feed};
use netdiag_experiments::explain::ExplainFilter;
use netdiag_experiments::runner::{prepare_with, RunConfig};
use netdiag_experiments::sampling::{sample_failure, FailureSpec};
use netdiag_netsim::{apply_failure, looking_glass_query, probe_mesh};
use netdiag_obs::{InMemoryRecorder, Recorder, RecorderHandle, TraceRecorder};
use netdiagnoser::text::{parse_feed, parse_observations, RecordedIpToAs, RecordedLookingGlass};
use netdiagnoser::{Algorithm, DiagnosticsConfig, NetDiagnoser};

fn usage() -> ! {
    eprintln!(
        "usage:\n  netdiag simulate --out DIR [--seed N] [--sensors N] \
         [--failure links:<x>|router|misconfig|misconfig+link] [--blocked FRAC] [--lg FRAC] \
         [--topology FILE] [--profile FILE] [--trace FILE] [--trace-chrome FILE]\n  \
         netdiag diagnose --dir DIR [--algo tomo|nd-edge|nd-bgpigp|nd-lg] [--json] \
         [--min-confidence F] [--max-issues N] [--profile FILE] \
         [--trace FILE] [--trace-chrome FILE]\n  \
         netdiag explain TRACE.jsonl [--placement P] [--trial N] \
         [--algo tomo|nd-edge|nd-bgpigp|nd-lg]\n  \
         netdiag trials [--placements N] [--failures N] [--seed N] \
         [--failure links:<x>|router|misconfig|misconfig+link] [--blocked FRAC] [--lg FRAC] \
         [--threads N]\n  \
         netdiag gen --ases N [--seed N] [--tier1 N] [--transit-frac F] [--multihoming F] \
         [--peering F] [--converge] [--threads N] [--json]"
    );
    std::process::exit(2)
}

/// Output sinks selected on the command line.
struct RunSinks {
    profile: Option<(PathBuf, Arc<InMemoryRecorder>)>,
    tracer: Option<Arc<TraceRecorder>>,
    trace_path: Option<PathBuf>,
    chrome_path: Option<PathBuf>,
}

/// The recorder for a run: a fanout of the sinks selected by `--profile`,
/// `--trace` and `--trace-chrome`, or the free no-op when none was given.
fn run_recorder(args: &[String]) -> (RecorderHandle, RunSinks) {
    let trace_path = get_flag(args, "--trace").map(PathBuf::from);
    let chrome_path = get_flag(args, "--trace-chrome").map(PathBuf::from);
    let profile = get_flag(args, "--profile")
        .map(|path| (PathBuf::from(path), Arc::new(InMemoryRecorder::new())));
    let tracer =
        (trace_path.is_some() || chrome_path.is_some()).then(|| Arc::new(TraceRecorder::new()));
    let mut sinks: Vec<Arc<dyn Recorder>> = Vec::new();
    if let Some((_, sink)) = &profile {
        sinks.push(Arc::clone(sink) as Arc<dyn Recorder>);
    }
    if let Some(t) = &tracer {
        sinks.push(Arc::clone(t) as Arc<dyn Recorder>);
    }
    let handle = if sinks.is_empty() {
        RecorderHandle::noop()
    } else {
        RecorderHandle::fanout(sinks)
    };
    (
        handle,
        RunSinks {
            profile,
            tracer,
            trace_path,
            chrome_path,
        },
    )
}

/// Writes whichever run reports and trace exports were requested.
fn write_outputs(sinks: RunSinks) -> Result<(), ExitCode> {
    fn write(path: &Path, contents: String) -> Result<(), ExitCode> {
        fs::write(path, contents).map_err(|e| {
            eprintln!("cannot write {}: {e}", path.display());
            ExitCode::FAILURE
        })
    }
    if let Some((path, sink)) = &sinks.profile {
        write(path, sink.report().to_json())?;
    }
    if let Some(t) = &sinks.tracer {
        if t.dropped() > 0 {
            eprintln!(
                "warning: trace ring overflowed, {} oldest events dropped",
                t.dropped()
            );
        }
        if let Some(path) = &sinks.trace_path {
            write(path, t.to_jsonl())?;
        }
        if let Some(path) = &sinks.chrome_path {
            write(path, t.to_chrome_trace())?;
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("simulate") => simulate(args.collect()),
        Some("diagnose") => diagnose(args.collect()),
        Some("explain") => explain_cmd(args.collect()),
        Some("trials") => trials(args.collect()),
        Some("gen") => gen_cmd(args.collect()),
        _ => usage(),
    }
}

fn get_flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Parses a `--failure` value (`links:<x>`, `router`, `misconfig`,
/// `misconfig+link`); `None` means the default single link failure.
fn parse_failure_spec(value: Option<&str>) -> FailureSpec {
    match value {
        None => FailureSpec::Links(1),
        Some("router") => FailureSpec::Router,
        Some("misconfig") => FailureSpec::Misconfig,
        Some("misconfig+link") => FailureSpec::MisconfigPlusLink,
        Some(s) => match s.strip_prefix("links:").and_then(|x| x.parse().ok()) {
            Some(x) => FailureSpec::Links(x),
            None => usage(),
        },
    }
}

/// `netdiag trials`: the placement x failure experiment loop on the
/// worker pool, summarised as per-algorithm accuracy means.
fn trials(args: Vec<String>) -> ExitCode {
    let parse_or_usage = |flag: &str, default: usize| -> usize {
        get_flag(&args, flag).map_or(default, |v| v.parse().unwrap_or_else(|_| usage()))
    };
    let seed: u64 = get_flag(&args, "--seed").map_or(1, |v| v.parse().unwrap_or_else(|_| usage()));
    let blocked: f64 =
        get_flag(&args, "--blocked").map_or(0.0, |v| v.parse().unwrap_or_else(|_| usage()));
    let lg_frac: f64 =
        get_flag(&args, "--lg").map_or(1.0, |v| v.parse().unwrap_or_else(|_| usage()));
    let fc = netdiag_experiments::figures::FigureConfig {
        placements: parse_or_usage("--placements", 10),
        failures_per_placement: parse_or_usage("--failures", 100),
        base_seed: seed,
        topology_seed: seed,
        threads: parse_or_usage("--threads", 0),
        ..Default::default()
    };
    let cfg = RunConfig {
        failure: parse_failure_spec(get_flag(&args, "--failure").as_deref()),
        blocked_frac: blocked,
        lg_frac,
        ..Default::default()
    };
    let net = fc.internet();
    let t0 = std::time::Instant::now();
    let trials = netdiag_experiments::figures::collect_trials(&net, &cfg, &fc);
    let elapsed = t0.elapsed();
    if trials.is_empty() {
        eprintln!("no unreachability-causing failures could be drawn");
        return ExitCode::FAILURE;
    }
    let mean = |f: &dyn Fn(&netdiag_experiments::runner::TrialResult) -> Option<f64>| -> String {
        let vals: Vec<f64> = trials.iter().filter_map(f).collect();
        if vals.is_empty() {
            "-".into()
        } else {
            format!("{:.3}", vals.iter().sum::<f64>() / vals.len() as f64)
        }
    };
    println!(
        "{} trials ({} placements x {} failures) in {elapsed:.1?}",
        trials.len(),
        fc.placements,
        fc.failures_per_placement
    );
    println!("algorithm   sensitivity  specificity");
    for (name, get) in [
        (
            "tomo",
            &(|t: &netdiag_experiments::runner::TrialResult| Some(t.tomo))
                as &dyn Fn(&netdiag_experiments::runner::TrialResult) -> Option<_>,
        ),
        ("nd-edge", &|t| Some(t.nd_edge)),
        ("nd-bgpigp", &|t| Some(t.nd_bgpigp)),
        ("nd-lg", &|t| t.nd_lg),
    ] {
        let sens = mean(&|t| get(t).map(|e| e.sensitivity));
        let spec = mean(&|t| get(t).map(|e| e.specificity));
        println!("{name:<11} {sens:>11}  {spec:>11}");
    }
    ExitCode::SUCCESS
}

fn simulate(args: Vec<String>) -> ExitCode {
    let out = PathBuf::from(get_flag(&args, "--out").unwrap_or_else(|| usage()));
    let seed: u64 = get_flag(&args, "--seed").map_or(1, |v| v.parse().unwrap_or_else(|_| usage()));
    let sensors_n: usize =
        get_flag(&args, "--sensors").map_or(10, |v| v.parse().unwrap_or_else(|_| usage()));
    let blocked: f64 =
        get_flag(&args, "--blocked").map_or(0.0, |v| v.parse().unwrap_or_else(|_| usage()));
    let lg_frac: f64 =
        get_flag(&args, "--lg").map_or(1.0, |v| v.parse().unwrap_or_else(|_| usage()));
    let failure_spec = parse_failure_spec(get_flag(&args, "--failure").as_deref());

    let net = match get_flag(&args, "--topology") {
        None => netdiag_topology::builders::build_internet(
            &netdiag_topology::builders::InternetConfig {
                seed,
                ..Default::default()
            },
        ),
        Some(file) => {
            let text = match fs::read_to_string(&file) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("cannot read {file}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let topology = match netdiag_topology::text::parse_topology(&text) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("topology parse error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let net = netdiag_topology::builders::Internet::from_topology(topology);
            if net.cores.is_empty() || net.stubs.len() < 2 {
                eprintln!(
                    "custom topology needs at least one core AS (the troubleshooter)                      and two stub ASes (sensor hosts)"
                );
                return ExitCode::FAILURE;
            }
            net
        }
    };
    let sensors_n = sensors_n.min(net.stubs.len());
    let cfg = RunConfig {
        n_sensors: sensors_n,
        failure: failure_spec,
        blocked_frac: blocked,
        lg_frac,
        ..Default::default()
    };
    let mut rng = StdRng::seed_from_u64(seed ^ 0xBEEF);
    let (recorder, sinks) = run_recorder(&args);
    let ctx = {
        let _trial = netdiag_obs::trial_scope(0, netdiag_obs::SETUP_TRIAL);
        prepare_with(&net, &cfg, &mut rng, recorder)
    };
    let topology = ctx.sim.topology();

    // Draw failures until one causes unreachability.
    let _trial = netdiag_obs::trial_scope(0, 0);
    let mut frng = StdRng::seed_from_u64(seed ^ 0xF00D);
    let (failure, broken, after) = loop {
        let Some(failure) = sample_failure(
            &ctx.sim,
            &ctx.mesh_before,
            &ctx.sensors,
            cfg.failure,
            &mut frng,
        ) else {
            eprintln!("no failure of that class is sampleable here");
            return ExitCode::FAILURE;
        };
        let mut broken = ctx.sim.clone();
        {
            let _phase = netdiag_obs::phase_scope(netdiag_obs::Phase::Inject);
            apply_failure(&mut broken, &failure);
        }
        let after = {
            let _phase = netdiag_obs::phase_scope(netdiag_obs::Phase::Measure);
            probe_mesh(&broken, &ctx.sensors, &ctx.blocked)
        };
        if after.failed_count() > 0 {
            break (failure, broken, after);
        }
    };

    let mut broken = broken;
    let observed = broken.take_observed();
    let igp_events = broken.take_igp_events();
    let obs = observations(&ctx.sensors, &ctx.mesh_before, &after);
    let feed = routing_feed(topology, ctx.observer, &observed, &igp_events);

    // Record pre-failure Looking Glass answers for every (available AS,
    // destination) pair.
    let mut lg = RecordedLookingGlass::new();
    for &a in &ctx.lg_available {
        for s in ctx.sensors.sensors() {
            if let Some(path) = looking_glass_query(&ctx.sim, a, s.addr) {
                lg.record(a, s.addr, path);
            }
        }
    }

    // IP-to-AS mapping restricted to observed addresses.
    let mut ip2as_text = String::from("# ip2as <addr> <as>\n");
    let mut seen: BTreeSet<Ipv4Addr> = BTreeSet::new();
    for snap in [&obs.before, &obs.after] {
        for p in &snap.paths {
            for h in &p.hops {
                if let netdiagnoser::Hop::Addr(a) = h {
                    if seen.insert(*a) {
                        if let Some(asn) = topology.as_of_ip(*a) {
                            let _ = writeln!(ip2as_text, "ip2as {a} {}", asn.0);
                        }
                    }
                }
            }
        }
    }

    // Ground truth for checking answers.
    let mut truth = String::from("# failed links as interface address pairs\n");
    for l in failure.all_failure_sites(&ctx.sim) {
        let link = topology.link(l);
        let _ = writeln!(truth, "failed {} {}", link.addr_a, link.addr_b);
    }

    // A Graphviz rendering with the failure sites highlighted.
    let dot = netdiag_topology::export::to_dot(
        topology,
        &netdiag_topology::export::DotOptions {
            highlight: failure.all_failure_sites(&ctx.sim).into_iter().collect(),
            hide_stubs: true,
        },
    );

    if let Err(e) = fs::create_dir_all(&out) {
        eprintln!("cannot create {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    let (sensors_txt, before_txt, after_txt) = netdiagnoser::text::write_observations(&obs);
    let files = [
        ("sensors.txt", sensors_txt),
        ("before.txt", before_txt),
        ("after.txt", after_txt),
        ("feed.txt", netdiagnoser::text::write_feed(&feed)),
        ("lg.txt", lg.write()),
        ("ip2as.txt", ip2as_text),
        ("truth.txt", truth),
        ("topology.dot", dot),
    ];
    for (name, contents) in files {
        if let Err(e) = fs::write(out.join(name), contents) {
            eprintln!("cannot write {name}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Err(code) = write_outputs(sinks) {
        return code;
    }
    println!(
        "scenario written to {} ({} failed paths, {} observed messages)",
        out.display(),
        after.failed_count(),
        observed.len()
    );
    ExitCode::SUCCESS
}

fn read(dir: &Path, name: &str) -> Result<String, ExitCode> {
    fs::read_to_string(dir.join(name)).map_err(|e| {
        eprintln!("cannot read {}: {e}", dir.join(name).display());
        ExitCode::FAILURE
    })
}

fn diagnose(args: Vec<String>) -> ExitCode {
    let dir = PathBuf::from(get_flag(&args, "--dir").unwrap_or_else(|| usage()));
    let algo = get_flag(&args, "--algo").unwrap_or_else(|| "nd-edge".into());

    let (sensors, before, after, feed_txt, lg_txt, ip2as_txt) = match (
        read(&dir, "sensors.txt"),
        read(&dir, "before.txt"),
        read(&dir, "after.txt"),
        read(&dir, "feed.txt"),
        read(&dir, "lg.txt"),
        read(&dir, "ip2as.txt"),
    ) {
        (Ok(a), Ok(b), Ok(c), Ok(d), Ok(e), Ok(f)) => (a, b, c, d, e, f),
        _ => return ExitCode::FAILURE,
    };
    let obs = match parse_observations(&sensors, &before, &after) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("parse error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let feed = match parse_feed(&feed_txt) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("feed parse error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let lg = match RecordedLookingGlass::parse(&lg_txt) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("lg parse error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let ip2as = match RecordedIpToAs::parse(&ip2as_txt) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("ip2as parse error: {e}");
            return ExitCode::FAILURE;
        }
    };

    let Ok(algorithm) = algo.parse::<Algorithm>() else {
        usage()
    };
    let as_json = args.iter().any(|a| a == "--json");
    let mut config = DiagnosticsConfig::for_algorithm(algorithm);
    if let Some(f) = get_flag(&args, "--min-confidence") {
        let Ok(min) = f.parse::<f64>() else { usage() };
        config.min_confidence = min;
    }
    if let Some(n) = get_flag(&args, "--max-issues") {
        let Ok(max) = n.parse::<usize>() else { usage() };
        config.max_issues = max;
    }
    let (recorder, sinks) = run_recorder(&args);
    let report = {
        let _trial = netdiag_obs::trial_scope(0, 0);
        let _phase = netdiag_obs::phase_scope(netdiag_obs::Phase::Diagnose);
        match NetDiagnoser::builder()
            .config(config)
            .routing_feed(feed)
            .looking_glass(lg)
            .recorder(recorder)
            .build()
            .report(&obs, &ip2as)
        {
            Ok(r) => r,
            Err(e) => {
                eprintln!("diagnosis failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    if let Err(code) = write_outputs(sinks) {
        return code;
    }
    // Write through a fallible sink: a closed pipe (e.g. `| head`) must
    // end the program quietly, not panic.
    let mut out = String::new();
    if as_json {
        out.push_str(&report.to_json());
        out.push('\n');
    } else {
        out.push_str(&report.to_string());
    }
    if let Ok(truth) = read(&dir, "truth.txt") {
        out.push_str("--- ground truth (truth.txt) ---\n");
        for line in truth.lines().filter(|l| l.starts_with("failed")) {
            out.push_str(line);
            out.push('\n');
        }
    }
    use std::io::Write as _;
    let _ = std::io::stdout().write_all(out.as_bytes());
    ExitCode::SUCCESS
}

/// Peak resident-set size of this process in kB (`VmHWM` from
/// `/proc/self/status`); `None` off Linux.
fn peak_rss_kb() -> Option<u64> {
    let status = fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// `netdiag gen`: generate a seeded internet-scale topology and
/// optionally converge it, reporting shape, wall times and peak RSS.
fn gen_cmd(args: Vec<String>) -> ExitCode {
    let n_ases: usize = get_flag(&args, "--ases")
        .unwrap_or_else(|| usage())
        .parse()
        .unwrap_or_else(|_| usage());
    let seed: u64 = get_flag(&args, "--seed").map_or(1, |v| v.parse().unwrap_or_else(|_| usage()));
    let parse_f64 = |flag: &str, default: f64| -> f64 {
        get_flag(&args, flag).map_or(default, |v| v.parse().unwrap_or_else(|_| usage()))
    };
    let mut cfg = netdiag_topology::gen::GenConfig::new(n_ases, seed);
    if let Some(t1) = get_flag(&args, "--tier1") {
        cfg.n_tier1 = t1.parse().unwrap_or_else(|_| usage());
    }
    cfg.transit_frac = parse_f64("--transit-frac", cfg.transit_frac);
    cfg.multihoming = parse_f64("--multihoming", cfg.multihoming);
    cfg.peering_density = parse_f64("--peering", cfg.peering_density);
    let threads: usize =
        get_flag(&args, "--threads").map_or(1, |v| v.parse().unwrap_or_else(|_| usage()));
    let converge = args.iter().any(|a| a == "--converge");
    let as_json = args.iter().any(|a| a == "--json");

    let t0 = std::time::Instant::now();
    let net = match netdiag_topology::gen::generate(&cfg) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("generation failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let gen_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t = &net.topology;
    let (ases, routers, links) = (t.as_count(), t.router_count(), t.link_count());
    let (n_tier1, n_transit, n_stub) = (net.tier1.len(), net.transits.len(), net.stubs.len());

    let mut converge_stats = None;
    if converge {
        let topology = Arc::new(net.topology);
        let mut sim = if threads > 1 {
            netdiag_netsim::Sim::new_parallel(topology, threads)
        } else {
            netdiag_netsim::Sim::new(topology)
        };
        let t1 = std::time::Instant::now();
        if threads > 1 {
            sim.converge_all_sharded(threads);
        } else {
            sim.converge_all();
        }
        let converge_ms = t1.elapsed().as_secs_f64() * 1e3;
        // Full-RIB check: every router must hold a route to every prefix.
        let topology = sim.topology();
        let rib_routes: u64 = topology
            .routers()
            .iter()
            .map(|r| sim.bgp().loc_rib(r.id).count() as u64)
            .sum();
        converge_stats = Some((converge_ms, sim.bgp_messages(), rib_routes));
    }
    let rss_kb = peak_rss_kb();

    if as_json {
        let mut line = format!(
            "{{\"ases\":{ases},\"tier1\":{n_tier1},\"transits\":{n_transit},\
             \"stubs\":{n_stub},\"routers\":{routers},\"links\":{links},\
             \"threads\":{threads},\"gen_ms\":{gen_ms:.1}"
        );
        if let Some((converge_ms, messages, rib_routes)) = converge_stats {
            let _ = write!(
                line,
                ",\"converge_ms\":{converge_ms:.1},\"messages\":{messages},\
                 \"rib_routes\":{rib_routes}"
            );
        }
        if let Some(kb) = rss_kb {
            let _ = write!(line, ",\"rss_peak_kb\":{kb}");
        }
        line.push('}');
        println!("{line}");
    } else {
        println!(
            "generated {ases} ASes ({n_tier1} tier-1, {n_transit} transit, {n_stub} stub), \
             {routers} routers, {links} links in {gen_ms:.1} ms"
        );
        if let Some((converge_ms, messages, rib_routes)) = converge_stats {
            println!(
                "converged in {:.2} s ({messages} BGP messages, {rib_routes} Loc-RIB routes, \
                 {threads} thread{})",
                converge_ms / 1e3,
                if threads == 1 { "" } else { "s" }
            );
        }
        if let Some(kb) = rss_kb {
            println!("peak RSS {:.1} MiB", kb as f64 / 1024.0);
        }
    }
    ExitCode::SUCCESS
}

fn explain_cmd(args: Vec<String>) -> ExitCode {
    let mut file = None;
    let mut i = 0;
    while i < args.len() {
        let a = args[i].as_str();
        if matches!(a, "--placement" | "--trial" | "--algo") {
            i += 2;
        } else if a.starts_with("--") {
            usage();
        } else {
            if file.is_some() {
                usage();
            }
            file = Some(args[i].clone());
            i += 1;
        }
    }
    let file = file.unwrap_or_else(|| usage());
    let parse_u32 = |flag: &str| -> Option<u32> {
        get_flag(&args, flag).map(|v| v.parse().unwrap_or_else(|_| usage()))
    };
    let filter = ExplainFilter {
        placement: parse_u32("--placement"),
        trial: parse_u32("--trial"),
        algo: get_flag(&args, "--algo"),
    };
    let trace = match fs::read_to_string(&file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {file}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match netdiag_experiments::explain::explain(&trace, &filter) {
        Ok(narrative) => {
            use std::io::Write as _;
            let _ = std::io::stdout().write_all(narrative.as_bytes());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("explain: {e}");
            ExitCode::FAILURE
        }
    }
}
