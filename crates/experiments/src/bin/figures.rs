//! Regenerates the paper's figures.
//!
//! ```text
//! figures <fig5|fig6|fig7|fig8|fig9|fig10|fig11|fig12|claims|ablations|robustness|scalability|summary|all>
//!         [--placements N] [--failures N] [--seed S] [--out DIR] [--quick]
//!         [--threads N] [--profile FILE]
//! ```
//!
//! Defaults match the paper (10 placements x 100 failures per scenario).
//! Tables are printed and written as CSV under `--out` (default
//! `results/`). With `--profile`, instrumentation counters aggregated over
//! every selected figure are written to FILE as a JSON run report and a
//! summary section is printed.

// A runnable demo talks to its user on stdout.
#![allow(clippy::print_stdout)]
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use netdiag_experiments::figures::{self, FigureConfig, FigureOutput};
use netdiag_obs::RecorderHandle;

/// A named figure regenerator.
type FigureFn = fn(&FigureConfig) -> Vec<FigureOutput>;

fn usage() -> ! {
    eprintln!(
        "usage: figures <fig5|fig6|fig7|fig8|fig9|fig10|fig11|fig12|claims|ablations|robustness|scalability|summary|all> \
         [--placements N] [--failures N] [--seed S] [--out DIR] [--quick] [--threads N] \
         [--profile FILE]"
    );
    std::process::exit(2)
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(which) = args.next() else { usage() };
    let mut fc = FigureConfig::default();
    let mut out_dir = PathBuf::from("results");
    let mut profile = None;
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--profile" => {
                let path = args.next().map(PathBuf::from).unwrap_or_else(|| usage());
                let (handle, sink) = RecorderHandle::in_memory();
                fc.recorder = handle;
                profile = Some((path, sink));
            }
            "--placements" => {
                fc.placements = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--failures" => {
                fc.failures_per_placement = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--seed" => {
                fc.base_seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--threads" => {
                fc.threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--out" => out_dir = args.next().map(PathBuf::from).unwrap_or_else(|| usage()),
            "--quick" => {
                fc.placements = FigureConfig::quick().placements;
                fc.failures_per_placement = FigureConfig::quick().failures_per_placement;
            }
            _ => usage(),
        }
    }

    let figs: Vec<(&str, FigureFn)> = vec![
        ("fig5", figures::fig5::run),
        ("fig6", figures::fig6::run),
        ("fig7", figures::fig7::run),
        ("fig8", figures::fig8::run),
        ("fig9", figures::fig9::run),
        ("fig10", figures::fig10::run),
        ("fig11", figures::fig11::run),
        ("fig12", figures::fig12::run),
        ("claims", figures::claims::run),
        ("ablations", figures::ablations::run),
        ("robustness", figures::robustness::run),
        ("scalability", figures::scalability::run),
    ];
    if which == "summary" {
        match netdiag_experiments::summary::build(&out_dir) {
            Ok(md) => {
                print!("{md}");
                println!("(written to {})", out_dir.join("SUMMARY.md").display());
                return ExitCode::SUCCESS;
            }
            Err(e) => {
                eprintln!("summary failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let selected: Vec<_> = figs
        .iter()
        .filter(|(name, _)| which == "all" || which == *name)
        .collect();
    if selected.is_empty() {
        usage();
    }

    for (name, run) in selected {
        let t0 = Instant::now();
        println!("== {name} ==");
        for output in run(&fc) {
            // Ignore broken pipes (`figures ... | head` must not panic).
            use std::io::Write as _;
            let _ = writeln!(std::io::stdout(), "-- {} --", output.name);
            let _ = std::io::stdout().write_all(output.table.to_text().as_bytes());
            let path = out_dir.join(format!("{}.csv", output.name));
            if let Err(e) = output.table.write_csv(&path) {
                eprintln!("failed to write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            println!("(written to {})", path.display());
        }
        println!("[{name} done in {:.1?}]\n", t0.elapsed());
    }
    if which == "all" {
        if let Err(e) = netdiag_experiments::summary::build(&out_dir) {
            eprintln!("summary failed: {e}");
            return ExitCode::FAILURE;
        }
        println!(
            "(digest written to {})",
            out_dir.join("SUMMARY.md").display()
        );
    }
    if let Some((path, sink)) = profile {
        let report = sink.report();
        if let Err(e) = std::fs::write(&path, report.to_json()) {
            eprintln!("cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("== run report ==");
        for name in [
            netdiag_obs::names::IGP_SPF_RUNS,
            netdiag_obs::names::BGP_MSGS,
            netdiag_obs::names::PROBE_TRACEROUTES,
            netdiag_obs::names::HS_GREEDY_ITERS,
            netdiag_obs::names::DIAG_RUNS,
        ] {
            println!("{name} = {}", report.counter(name));
        }
        println!("(full report written to {})", path.display());
    }
    ExitCode::SUCCESS
}
