//! Evaluation harness reproducing the NetDiagnoser paper's experiments.
//!
//! The pipeline: generate the 165-AS research-Internet topology, place
//! sensors ([`placement`]), converge routing, probe the full mesh, inject a
//! failure ([`sampling`]), re-probe, feed the diagnoser, and score against
//! ground truth ([`truth`]). [`runner`] wires it together; [`figures`] has
//! one regenerator per paper figure; the `figures` binary drives them.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod bridge;
pub mod explain;
pub mod figures;
pub mod output;
pub mod placement;
pub mod runner;
pub mod sampling;
pub mod summary;
pub mod truth;
