//! `netdiag explain`: replays a JSONL event trace (written with
//! `--trace`) into a human-readable causal narrative — for each diagnosis
//! run of one trial, why every hypothesis link was blamed, which
//! control-plane evidence corroborated it, and what stayed unexplained.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use netdiag_obs::json::{self, Json};
use netdiag_obs::names;

/// Which trial (and optionally which algorithm) to narrate.
#[derive(Clone, Debug, Default)]
pub struct ExplainFilter {
    /// Placement id; defaults to the first placement with a diagnosis.
    pub placement: Option<u32>,
    /// Trial id; defaults to the first trial with a diagnosis.
    pub trial: Option<u32>,
    /// Restrict to one algorithm (`tomo`, `nd-edge`, `nd-bgpigp`, `nd-lg`).
    pub algo: Option<String>,
}

/// One parsed trace event.
struct Ev {
    name: String,
    placement: Option<u64>,
    trial: Option<u64>,
    seq: u64,
    payload: Json,
}

/// One `diag.start` … `diag.done` run within a trial.
#[derive(Default)]
struct DiagBlock {
    algorithm: String,
    reroute_sets: Vec<Json>,
    forced: Vec<Json>,
    exonerated: Vec<Json>,
    picks: Vec<Json>,
    problem: Option<Json>,
    done: Option<Json>,
}

/// Renders the causal narrative for one trial of `trace_jsonl`.
///
/// Returns the narrative text, or a description of what went wrong (bad
/// JSON, no diagnosis events, no matching trial).
pub fn explain(trace_jsonl: &str, filter: &ExplainFilter) -> Result<String, String> {
    let events = parse_events(trace_jsonl)?;
    if events.is_empty() {
        return Err("trace is empty".into());
    }

    // Pick the (placement, trial) to narrate: the first diagnosis start
    // compatible with the filters.
    let target = events
        .iter()
        .find(|e| {
            e.name == names::EV_DIAG_START
                && filter
                    .placement
                    .is_none_or(|p| e.placement == Some(u64::from(p)))
                && filter.trial.is_none_or(|t| e.trial == Some(u64::from(t)))
        })
        .and_then(|e| Some((e.placement?, e.trial?)));
    let Some((p, t)) = target else {
        return Err("no matching diagnosis events in the trace \
             (was the run traced? do --placement/--trial exist?)"
            .into());
    };

    let mut trial_events: Vec<&Ev> = events
        .iter()
        .filter(|e| e.placement == Some(p) && e.trial == Some(t))
        .collect();
    trial_events.sort_by_key(|e| e.seq);

    let blocks = group_blocks(&trial_events);
    let blocks: Vec<&DiagBlock> = blocks
        .iter()
        .filter(|b| filter.algo.as_deref().is_none_or(|a| a == b.algorithm))
        .collect();
    if blocks.is_empty() {
        return Err(format!(
            "trial {t} of placement {p} has no diagnosis matching the --algo filter"
        ));
    }

    let mut out = String::new();
    render_trial_header(&mut out, &trial_events, p, t);
    for b in blocks {
        render_block(&mut out, b);
    }
    Ok(out)
}

/// Parses the JSONL lines into events, rejecting malformed lines.
fn parse_events(trace_jsonl: &str) -> Result<Vec<Ev>, String> {
    let mut events = Vec::new();
    for (i, line) in trace_jsonl.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let v = json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        let name = v
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("line {}: event has no \"name\"", i + 1))?
            .to_string();
        events.push(Ev {
            name,
            placement: v.get("placement").and_then(Json::as_u64),
            trial: v.get("trial").and_then(Json::as_u64),
            seq: v.get("seq").and_then(Json::as_u64).unwrap_or(0),
            payload: v.get("payload").cloned().unwrap_or(Json::Null),
        });
    }
    Ok(events)
}

/// Splits a trial's events into per-diagnosis blocks. Events outside a
/// `diag.start`…`diag.done` window (probing, BGP chatter) are ignored
/// here; the header summarises them separately.
fn group_blocks(trial_events: &[&Ev]) -> Vec<DiagBlock> {
    let mut blocks: Vec<DiagBlock> = Vec::new();
    let mut current: Option<DiagBlock> = None;
    for e in trial_events {
        match e.name.as_str() {
            n if n == names::EV_DIAG_START => {
                current = Some(DiagBlock {
                    algorithm: e
                        .payload
                        .get("algorithm")
                        .and_then(Json::as_str)
                        .unwrap_or("?")
                        .to_string(),
                    ..DiagBlock::default()
                });
            }
            n if n == names::EV_DIAG_DONE => {
                if let Some(mut b) = current.take() {
                    b.done = Some(e.payload.clone());
                    blocks.push(b);
                }
            }
            _ => {
                let Some(b) = current.as_mut() else { continue };
                match e.name.as_str() {
                    n if n == names::EV_DIAG_REROUTE_SET => b.reroute_sets.push(e.payload.clone()),
                    n if n == names::EV_FEED_FORCED => b.forced.push(e.payload.clone()),
                    n if n == names::EV_FEED_EXONERATED => b.exonerated.push(e.payload.clone()),
                    n if n == names::EV_HS_PICK => b.picks.push(e.payload.clone()),
                    n if n == names::EV_DIAG_PROBLEM => b.problem = Some(e.payload.clone()),
                    _ => {}
                }
            }
        }
    }
    blocks
}

/// Renders what happened to the trial before diagnosis: the injected
/// failure and the measurement summary.
fn render_trial_header(out: &mut String, trial_events: &[&Ev], p: u64, t: u64) {
    let _ = writeln!(out, "=== placement {p}, trial {t} ===");
    if let Some(attempt) = trial_events
        .iter()
        .rev()
        .find(|e| e.name == names::EV_TRIAL_ATTEMPT)
    {
        let kind = attempt
            .payload
            .get("kind")
            .and_then(Json::as_str)
            .unwrap_or("?");
        let n = attempt.payload.get("attempt").and_then(Json::as_u64);
        let _ = match n {
            Some(n) => writeln!(
                out,
                "injected failure: {kind} (accepted on sampling attempt {n})"
            ),
            None => writeln!(out, "injected failure: {kind}"),
        };
    }
    let failed_links = trial_events
        .iter()
        .filter(|e| e.name == names::EV_SIM_LINK_FAIL)
        .count();
    let withdrawals = trial_events
        .iter()
        .filter(|e| {
            e.name == names::EV_BGP_MESSAGE
                && e.payload.get("kind").and_then(Json::as_str) == Some("withdraw")
        })
        .count();
    let probes = trial_events
        .iter()
        .filter(|e| e.name == names::EV_PROBE_TRACEROUTE)
        .count();
    if failed_links + withdrawals + probes > 0 {
        let _ = writeln!(
            out,
            "observed: {failed_links} link-down events, {withdrawals} BGP withdrawals, \
             {probes} traceroutes"
        );
    }
}

/// Renders one diagnosis run: the problem shape, then the causal story of
/// every hypothesis link.
fn render_block(out: &mut String, b: &DiagBlock) {
    let _ = writeln!(out, "\n--- {} ---", b.algorithm);

    let empty = Json::Null;
    let problem = b.problem.as_ref().unwrap_or(&empty);
    let labels = edge_label_map(problem);
    let failure_pairs = str_list(problem.get("failure_pairs"));
    let reroute_pairs = str_list(problem.get("reroute_pairs"));
    let _ = writeln!(
        out,
        "problem: {} candidate links, {} failed pairs, {} rerouted pairs",
        num(problem.get("candidates")),
        failure_pairs.len(),
        reroute_pairs.len(),
    );

    let Some(done) = b.done.as_ref() else {
        let _ = writeln!(out, "(diagnosis did not finish in this trace)");
        return;
    };
    let hypothesis = u64_list(done.get("hypothesis"));
    let forced_ids = u64_list(done.get("forced"));
    if hypothesis.is_empty() {
        let _ = writeln!(out, "hypothesis: empty (nothing to explain)");
    } else {
        let _ = writeln!(out, "hypothesis ({} links):", hypothesis.len());
    }
    for (rank, &edge) in hypothesis.iter().enumerate() {
        let label = labels
            .get(&edge)
            .cloned()
            .unwrap_or_else(|| format!("edge {edge}"));
        let _ = writeln!(out, "  {}. {label}", rank + 1);
        if forced_ids.contains(&edge) {
            render_forced(out, b, edge);
        }
        if let Some(pick) = b
            .picks
            .iter()
            .find(|p| p.get("edge").and_then(Json::as_u64) == Some(edge))
        {
            render_pick(out, pick, &failure_pairs, &reroute_pairs, b);
        }
    }

    if !b.exonerated.is_empty() {
        let _ = writeln!(out, "exonerated by BGP withdrawals:");
        for ex in &b.exonerated {
            let _ = writeln!(
                out,
                "  - {} cleared: withdrawal of {} received from neighbor {}",
                text(ex.get("label")),
                text(ex.get("prefix")),
                text(ex.get("neighbor")),
            );
        }
    }

    let unexplained = u64_list(done.get("unexplained_failures"));
    if unexplained.is_empty() {
        let _ = writeln!(out, "every failed pair is explained");
    } else {
        let pairs: Vec<String> = unexplained
            .iter()
            .map(|&i| {
                failure_pairs
                    .get(i as usize)
                    .cloned()
                    .unwrap_or_else(|| format!("pair {i}"))
            })
            .collect();
        let _ = writeln!(out, "unexplained failed pairs: {}", pairs.join(", "));
    }
}

/// Renders the IGP corroboration of a forced hypothesis link.
fn render_forced(out: &mut String, b: &DiagBlock, edge: u64) {
    match b
        .forced
        .iter()
        .find(|f| f.get("edge").and_then(Json::as_u64) == Some(edge))
    {
        Some(f) => {
            let _ = writeln!(
                out,
                "     forced into the hypothesis: AS-X's IGP reported the \
                 {} -- {} link down",
                text(f.get("addr_a")),
                text(f.get("addr_b")),
            );
        }
        None => {
            let _ = writeln!(
                out,
                "     forced into the hypothesis by an IGP link-down event"
            );
        }
    }
}

/// Renders the greedy-cover justification of a picked hypothesis link.
fn render_pick(
    out: &mut String,
    pick: &Json,
    failure_pairs: &[String],
    reroute_pairs: &[String],
    b: &DiagBlock,
) {
    let covered_f = u64_list(pick.get("covered_failures"));
    let covered_r = u64_list(pick.get("covered_reroutes"));
    let name_of = |pairs: &[String], i: u64| {
        pairs
            .get(i as usize)
            .cloned()
            .unwrap_or_else(|| format!("pair {i}"))
    };
    let f_names: Vec<String> = covered_f
        .iter()
        .map(|&i| name_of(failure_pairs, i))
        .collect();
    if covered_f.is_empty() && covered_r.is_empty() {
        // Algorithm 1 adds every argmax edge of an iteration; ties after
        // the first cover pairs already counted under that first pick.
        let _ = writeln!(
            out,
            "     tied at greedy iteration {} (score {}): explains the same \
             pairs as the pick above",
            num(pick.get("iter")),
            num(pick.get("score")),
        );
        return;
    }
    let _ = writeln!(
        out,
        "     blamed at greedy iteration {} (score {}): covers {} failed \
         probe pair{}{}{}",
        num(pick.get("iter")),
        num(pick.get("score")),
        covered_f.len(),
        if covered_f.len() == 1 { "" } else { "s" },
        if f_names.is_empty() { "" } else { ": " },
        f_names.join(", "),
    );
    for &i in &covered_r {
        let pair = name_of(reroute_pairs, i);
        let _ = writeln!(
            out,
            "     reroute corroborates: pair {pair} kept working but moved \
             off this link"
        );
        // The reroute-set event for that pair lists the alternatives the
        // new path excluded.
        if let Some(rs) = b.reroute_sets.iter().find(|r| {
            let src = r.get("src").and_then(Json::as_u64);
            let dst = r.get("dst").and_then(Json::as_u64);
            matches!((src, dst), (Some(s), Some(d)) if format!("s{s}->s{d}") == pair)
        }) {
            let excluded = str_list(rs.get("excluded"));
            if !excluded.is_empty() {
                let _ = writeln!(
                    out,
                    "       its old path also abandoned: {}",
                    excluded.join(", ")
                );
            }
        }
    }
}

/// The `edge_labels` table of `diag.problem` as an id → label map.
fn edge_label_map(problem: &Json) -> BTreeMap<u64, String> {
    let mut map = BTreeMap::new();
    if let Some(entries) = problem.get("edge_labels").and_then(Json::as_array) {
        for entry in entries {
            if let Some([id, label]) = entry.as_array() {
                if let (Some(id), Some(label)) = (id.as_u64(), label.as_str()) {
                    map.insert(id, label.to_string());
                }
            }
        }
    }
    map
}

/// A JSON array of strings, or empty.
fn str_list(v: Option<&Json>) -> Vec<String> {
    v.and_then(Json::as_array)
        .map(|a| {
            a.iter()
                .filter_map(Json::as_str)
                .map(str::to_string)
                .collect()
        })
        .unwrap_or_default()
}

/// A JSON array of numbers, or empty.
fn u64_list(v: Option<&Json>) -> Vec<u64> {
    v.and_then(Json::as_array)
        .map(|a| a.iter().filter_map(Json::as_u64).collect())
        .unwrap_or_default()
}

/// A numeric field rendered for display (`?` when absent).
fn num(v: Option<&Json>) -> String {
    v.and_then(Json::as_u64)
        .map_or_else(|| "?".into(), |n| n.to_string())
}

/// A string field rendered for display (`?` when absent).
fn text(v: Option<&Json>) -> String {
    v.and_then(Json::as_str).unwrap_or("?").to_string()
}
