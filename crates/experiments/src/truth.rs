//! Ground-truth evaluation: mapping a diagnosis back onto physical links
//! and computing the paper's metrics.
//!
//! The diagnoser reasons about *observed* directed edges (address pairs,
//! unidentified hops, logical halves). Evaluation happens at the physical
//! granularity the paper reports: each observed edge maps to the ground
//! truth [`LinkId`] of the link the probe crossed, and sensitivity /
//! specificity are computed over the set of *probed* physical links.

use std::collections::{BTreeMap, BTreeSet};

use netdiag_netsim::{ProbeMesh, Traceroute};
use netdiag_topology::{AsId, LinkId, Topology};
use netdiagnoser::{metrics, Diagnosis, Epoch, Hop, HopNode, PathRef, ProbePath};

/// Ground-truth map from observed edges to physical links.
#[derive(Clone, Debug, Default)]
pub struct TruthMap {
    /// (from, to) observed endpoint pair -> physical link.
    edges: BTreeMap<(HopNode, HopNode), LinkId>,
    /// All probed physical links (the universe `E`).
    probed_links: BTreeSet<LinkId>,
    /// All ASes touched by probes (universe for AS-specificity).
    probed_ases: BTreeSet<AsId>,
}

impl TruthMap {
    /// Builds the map from the two measured meshes. `before`/`after` must be
    /// the same meshes the diagnoser observed (hop indices align).
    pub fn build(topology: &Topology, before: &ProbeMesh, after: &ProbeMesh) -> TruthMap {
        let mut map = TruthMap::default();
        for (epoch, mesh) in [(Epoch::Before, before), (Epoch::After, after)] {
            for (index, tr) in mesh.traceroutes.iter().enumerate() {
                map.add_traceroute(topology, tr, PathRef { epoch, index });
            }
        }
        map
    }

    fn add_traceroute(&mut self, topology: &Topology, tr: &Traceroute, path_ref: PathRef) {
        // Reconstruct the diagnoser's node keys for each hop.
        let keys: Vec<HopNode> = tr
            .hops
            .iter()
            .enumerate()
            .map(|(pos, h)| match h.addr() {
                Some(addr) => HopNode::Ip(addr),
                None => HopNode::Uh(path_ref, pos),
            })
            .collect();
        for (pos, h) in tr.hops.iter().enumerate() {
            if let Some(r) = h.router() {
                self.probed_ases.insert(topology.as_of_router(r));
            }
            if pos == 0 {
                continue;
            }
            // The edge (hop[pos-1], hop[pos]) is the link the probe arrived
            // on at hop pos (None only for the final Dest hop, which shares
            // its router with the previous hop).
            if let Some(link) = h.link() {
                self.edges.insert((keys[pos - 1], keys[pos]), link);
                self.probed_links.insert(link);
            }
        }
    }

    /// The physical link behind an observed edge.
    pub fn link_of(&self, from: HopNode, to: HopNode) -> Option<LinkId> {
        self.edges.get(&(from, to)).copied()
    }

    /// The probed-link universe `E`.
    pub fn probed_links(&self) -> &BTreeSet<LinkId> {
        &self.probed_links
    }

    /// The probed-AS universe.
    pub fn probed_ases(&self) -> &BTreeSet<AsId> {
        &self.probed_ases
    }

    /// Maps a diagnosis hypothesis to physical links (deduplicated; logical
    /// halves and both directions collapse onto their link).
    pub fn hypothesis_links(&self, diagnosis: &Diagnosis) -> BTreeSet<LinkId> {
        diagnosis
            .hypothesis
            .iter()
            .filter_map(|&e| {
                let (from, to) = diagnosis.graph().endpoints(e);
                self.link_of(from, to)
            })
            .collect()
    }
}

/// The paper's metrics for one diagnosis run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Evaluation {
    /// Link-level sensitivity `|F ∩ H| / |F|`.
    pub sensitivity: f64,
    /// Link-level specificity over probed links.
    pub specificity: f64,
    /// AS-level sensitivity (per failed link: one of its ASes named).
    pub as_sensitivity: f64,
    /// AS-level specificity over probed ASes.
    pub as_specificity: f64,
    /// Size of the (physical) hypothesis set.
    pub hypothesis_size: usize,
}

/// Evaluates a diagnosis against the ground-truth failed links.
pub fn evaluate(
    topology: &Topology,
    truth: &TruthMap,
    diagnosis: &Diagnosis,
    failed: &BTreeSet<LinkId>,
) -> Evaluation {
    let hypothesis = truth.hypothesis_links(diagnosis);
    // Ground truth attributes each link to a single owning AS, matching the
    // paper's "the AS containing the failed link": intra-domain links to
    // their AS, inter-domain links to their `a`-side AS (the provider side
    // in the generated topologies).
    let link_as_set = |l: LinkId| -> BTreeSet<AsId> {
        BTreeSet::from([topology.as_of_router(topology.link(l).a)])
    };
    // AS-level hypothesis: AS attributions straight from the diagnoser
    // (includes LG tags for unidentified links).
    let h_as = diagnosis.as_hypothesis();
    let failed_as_sets: Vec<BTreeSet<AsId>> = failed.iter().map(|&l| link_as_set(l)).collect();
    let failed_as_union: BTreeSet<AsId> = failed_as_sets.iter().flatten().copied().collect();

    Evaluation {
        sensitivity: metrics::sensitivity(failed, &hypothesis),
        specificity: metrics::specificity(truth.probed_links(), failed, &hypothesis),
        as_sensitivity: metrics::as_sensitivity(&failed_as_sets, &h_as),
        as_specificity: metrics::as_specificity(truth.probed_ases(), &failed_as_union, &h_as),
        hypothesis_size: hypothesis.len(),
    }
}

/// Diagnosability `D(G)` of a measured mesh, computed over ground-truth
/// physical links per path (§4 of the paper).
pub fn mesh_diagnosability(mesh: &ProbeMesh) -> f64 {
    let paths: Vec<Vec<LinkId>> = mesh.traceroutes.iter().map(|t| t.links()).collect();
    metrics::diagnosability(&paths)
}

/// Sanity helper used by tests: the observed edges of a converted path must
/// map onto exactly its ground-truth links.
pub fn path_links_via_truth(
    truth: &TruthMap,
    path: &ProbePath,
    path_ref: PathRef,
) -> Vec<Option<LinkId>> {
    let keys: Vec<HopNode> = path
        .hops
        .iter()
        .enumerate()
        .map(|(pos, h)| match h {
            Hop::Addr(a) => HopNode::Ip(*a),
            Hop::Star => HopNode::Uh(path_ref, pos),
        })
        .collect();
    keys.windows(2).map(|w| truth.link_of(w[0], w[1])).collect()
}
