//! Sensor placement strategies (§4 of the paper, "Sensor placement and
//! diagnosability").

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

use netdiag_topology::builders::Internet;
use netdiag_topology::{AsId, RouterId};

/// The four placements of Figure 5.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Placement {
    /// All sensors attached to (distinct, where possible) routers of one
    /// tier-2 AS.
    SameAs,
    /// Half the sensors at routers of one tier-2 AS, half at routers of
    /// another homed to a different core — every inter-AS path crosses the
    /// same sequence of links.
    DistantAs,
    /// DistantAs plus a few sensors at intermediate ASes on the path
    /// between the two (the cores above them), splitting the shared chain.
    DistantAsSplit,
    /// Each sensor in a randomly chosen stub AS (the paper's default —
    /// and worst case).
    Random,
}

/// Produces the (AS, attach router) list for a placement.
///
/// # Panics
///
/// Panics if the topology has too few stub/tier-2 ASes for the strategy.
pub fn place_sensors(
    net: &Internet,
    placement: Placement,
    n: usize,
    rng: &mut StdRng,
) -> Vec<(AsId, RouterId)> {
    match placement {
        Placement::Random => {
            assert!(net.stubs.len() >= n, "need at least {n} stub ASes");
            let mut stubs: Vec<usize> = (0..net.stubs.len()).collect();
            stubs.shuffle(rng);
            stubs[..n]
                .iter()
                .map(|&i| (net.stubs[i].as_id, net.stubs[i].routers[0]))
                .collect()
        }
        Placement::SameAs => {
            assert!(!net.tier2.is_empty(), "need a tier-2 AS");
            let t2 = &net.tier2[rng.gen_range(0..net.tier2.len())];
            (0..n)
                .map(|_| {
                    let r = t2.routers[rng.gen_range(0..t2.routers.len())];
                    (t2.as_id, r)
                })
                .collect()
        }
        Placement::DistantAs => {
            let (a, b) = distant_tier2_pair(net, rng);
            let mut spec = Vec::with_capacity(n);
            for i in 0..n {
                let t2 = if i % 2 == 0 { a } else { b };
                let r = t2.routers[rng.gen_range(0..t2.routers.len())];
                spec.push((t2.as_id, r));
            }
            spec
        }
        Placement::DistantAsSplit => {
            let (a, b) = distant_tier2_pair(net, rng);
            // Intermediate sensors at the cores above both tier-2 ASes —
            // on the inter-AS path by construction.
            let n_mid = n.saturating_sub(2).min(4);
            let mut spec = Vec::with_capacity(n);
            let mids = cores_above(net, a, b);
            for i in 0..n_mid {
                let built = mids[i % mids.len()];
                let r = built.routers[rng.gen_range(0..built.routers.len())];
                spec.push((built.as_id, r));
            }
            for i in 0..n - n_mid {
                let t2 = if i % 2 == 0 { a } else { b };
                let r = t2.routers[rng.gen_range(0..t2.routers.len())];
                spec.push((t2.as_id, r));
            }
            spec
        }
    }
}

/// The core provider of a tier-2 AS (its first one when multihomed).
fn core_of_tier2<'a>(
    net: &'a Internet,
    t2: &netdiag_topology::builders::BuiltAs,
) -> Option<&'a netdiag_topology::builders::BuiltAs> {
    net.cores.iter().find(|c| {
        net.topology.relationship(t2.as_id, c.as_id) == Some(netdiag_topology::PeerKind::Provider)
    })
}

/// Picks two tier-2 ASes homed to *different* cores where possible
/// (maximizing the shared inter-AS chain), else any two distinct ones.
fn distant_tier2_pair<'a>(
    net: &'a Internet,
    rng: &mut StdRng,
) -> (
    &'a netdiag_topology::builders::BuiltAs,
    &'a netdiag_topology::builders::BuiltAs,
) {
    assert!(net.tier2.len() >= 2, "need at least two tier-2 ASes");
    let a = rng.gen_range(0..net.tier2.len());
    let core_a = core_of_tier2(net, &net.tier2[a]).map(|c| c.as_id);
    let candidates: Vec<usize> = (0..net.tier2.len())
        .filter(|&i| i != a && core_of_tier2(net, &net.tier2[i]).map(|c| c.as_id) != core_a)
        .collect();
    let b = if candidates.is_empty() {
        (a + 1) % net.tier2.len()
    } else {
        candidates[rng.gen_range(0..candidates.len())]
    };
    (&net.tier2[a], &net.tier2[b])
}

/// The core ASes above the two tier-2 ASes (the split points of the
/// inter-AS chain).
fn cores_above<'a>(
    net: &'a Internet,
    a: &netdiag_topology::builders::BuiltAs,
    b: &netdiag_topology::builders::BuiltAs,
) -> Vec<&'a netdiag_topology::builders::BuiltAs> {
    let mut mids: Vec<_> = [a, b]
        .iter()
        .filter_map(|t2| core_of_tier2(net, t2))
        .collect();
    mids.dedup_by_key(|c| c.as_id);
    if mids.is_empty() {
        mids.push(&net.cores[0]);
    }
    mids
}

#[cfg(test)]
mod tests {
    use super::*;
    use netdiag_topology::builders::{build_internet, InternetConfig};
    use rand::SeedableRng;

    fn net() -> Internet {
        build_internet(&InternetConfig::small(11))
    }

    #[test]
    fn random_uses_distinct_stubs() {
        let net = net();
        let mut rng = StdRng::seed_from_u64(1);
        let spec = place_sensors(&net, Placement::Random, 5, &mut rng);
        assert_eq!(spec.len(), 5);
        let ases: std::collections::BTreeSet<_> = spec.iter().map(|(a, _)| *a).collect();
        assert_eq!(ases.len(), 5, "random placement: distinct stub ASes");
    }

    #[test]
    fn same_as_uses_one_as() {
        let net = net();
        let mut rng = StdRng::seed_from_u64(2);
        let spec = place_sensors(&net, Placement::SameAs, 6, &mut rng);
        let ases: std::collections::BTreeSet<_> = spec.iter().map(|(a, _)| *a).collect();
        assert_eq!(ases.len(), 1);
    }

    #[test]
    fn distant_as_uses_two_ases() {
        let net = net();
        let mut rng = StdRng::seed_from_u64(3);
        let spec = place_sensors(&net, Placement::DistantAs, 8, &mut rng);
        let ases: std::collections::BTreeSet<_> = spec.iter().map(|(a, _)| *a).collect();
        assert_eq!(ases.len(), 2);
        // Balanced halves.
        let first = spec[0].0;
        let count = spec.iter().filter(|(a, _)| *a == first).count();
        assert_eq!(count, 4);
    }

    #[test]
    fn split_path_adds_intermediates() {
        let net = net();
        let mut rng = StdRng::seed_from_u64(4);
        let spec = place_sensors(&net, Placement::DistantAsSplit, 10, &mut rng);
        assert_eq!(spec.len(), 10);
        let ases: std::collections::BTreeSet<_> = spec.iter().map(|(a, _)| *a).collect();
        assert!(ases.len() >= 3, "intermediate ASes present: {ases:?}");
    }

    #[test]
    fn deterministic_given_seed() {
        let net = net();
        let a = place_sensors(&net, Placement::Random, 5, &mut StdRng::seed_from_u64(7));
        let b = place_sensors(&net, Placement::Random, 5, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }
}
