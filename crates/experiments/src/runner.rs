//! End-to-end experiment runner: placement → converge → probe → fail →
//! re-probe → diagnose → score. One [`PlacementContext`] per sensor
//! placement, many [`run_trial`] calls per context — matching the paper's
//! "10 random sensor placements and 100 failures per placement".

use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Mutex};

use rand::rngs::StdRng;
use rand::seq::SliceRandom;

use netdiag_netsim::{
    apply_failure, apply_failure_full, probe_mesh, Failure, ProbeMesh, SensorSet, Sim, SimSnapshot,
};
use netdiag_obs::{names, RecorderHandle};
use netdiag_topology::builders::Internet;
use netdiag_topology::{AsId, LinkId};
use netdiagnoser::{
    nd_bgpigp_recorded, nd_edge_recorded, nd_lg_recorded, tomo_recorded, DiagnosticsConfig,
};

use crate::bridge::{observations, routing_feed, SimLookingGlass, TruthIpToAs};
use crate::placement::{place_sensors, Placement};
use crate::sampling::{probed_links, sample_failure, sample_failure_from, FailureSpec};
use crate::truth::{evaluate, mesh_diagnosability, Evaluation, TruthMap};

/// Where the troubleshooting AS (AS-X) sits in the hierarchy (§5.3
/// studies core vs edge placement).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ObserverPosition {
    /// A core AS (the paper's default; Abilene here).
    Core,
    /// A tier-2 transit AS.
    Tier2,
    /// A stub AS hosting the first sensor.
    SensorStub,
}

/// Configuration of one experiment scenario.
#[derive(Clone, Copy, Debug)]
pub struct RunConfig {
    /// Number of sensors (paper default: 10).
    pub n_sensors: usize,
    /// Where AS-X sits (paper default: a core AS).
    pub observer: ObserverPosition,
    /// Placement strategy (paper default: random stubs).
    pub placement: Placement,
    /// Failure class to inject.
    pub failure: FailureSpec,
    /// Fraction of probed ASes that block traceroute (`f_b`).
    pub blocked_frac: f64,
    /// Fraction of probed ASes providing a Looking Glass.
    pub lg_frac: f64,
    /// Diagnosis tunables (greedy weights and reporting thresholds),
    /// shared by every algorithm scored in a trial. The `algorithm`
    /// field is ignored here — `score_trial` runs all four variants.
    pub diagnostics: DiagnosticsConfig,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            n_sensors: 10,
            observer: ObserverPosition::Core,
            placement: Placement::Random,
            failure: FailureSpec::Links(1),
            blocked_frac: 0.0,
            lg_frac: 1.0,
            diagnostics: DiagnosticsConfig::default(),
        }
    }
}

/// A prepared sensor placement: healthy converged network plus the
/// pre-failure measurements.
pub struct PlacementContext {
    /// Healthy converged simulator (observer set, message buffers drained).
    pub sim: Sim,
    /// The placed sensors.
    pub sensors: SensorSet,
    /// The troubleshooting AS (AS-X) — the first core AS.
    pub observer: AsId,
    /// ASes blocking traceroute.
    pub blocked: BTreeSet<AsId>,
    /// ASes providing Looking Glass servers (always includes AS-X).
    pub lg_available: BTreeSet<AsId>,
    /// The `T-` probe mesh (with blocking applied).
    pub mesh_before: ProbeMesh,
    /// Diagnosability `D(G)` of the unblocked pre-failure mesh.
    pub diagnosability: f64,
    /// Distinct links of `mesh_before` (the failure-sampling universe),
    /// computed once here instead of once per sampling attempt.
    pub probed_links: Vec<LinkId>,
    /// Completed-trial memo keyed by injected failure: the troubleshooter
    /// is deterministic, so a failure drawn a second time (common at paper
    /// scale, where hundreds of draws hit the same few hundred probed
    /// links) replays the recorded outcome instead of re-simulating.
    /// `None` records "fully rerouted — redraw". Bypassed whenever an
    /// instrumentation recorder is live, so traces and profiles still see
    /// every trial's real work.
    replay: Mutex<BTreeMap<Vec<u64>, Option<TrialResult>>>,
}

/// Prepares a placement on a generated internet.
pub fn prepare(net: &Internet, cfg: &RunConfig, rng: &mut StdRng) -> PlacementContext {
    prepare_with(net, cfg, rng, RecorderHandle::noop())
}

/// [`prepare`] with an instrumentation recorder: the simulator (and every
/// trial clone of it) reports IGP, BGP and probe counters to `recorder`,
/// and the preparation itself is timed as the `trial.setup` span.
pub fn prepare_with(
    net: &Internet,
    cfg: &RunConfig,
    rng: &mut StdRng,
    recorder: RecorderHandle,
) -> PlacementContext {
    let _setup = recorder.span(names::TRIAL_SETUP);
    let topology = Arc::new(net.topology.clone());
    let spec = place_sensors(net, cfg.placement, cfg.n_sensors, rng);
    let sensors = SensorSet::place(&topology, &spec);
    let observer = match cfg.observer {
        ObserverPosition::Core => net.cores[0].as_id,
        ObserverPosition::Tier2 => net.tier2[0].as_id,
        ObserverPosition::SensorStub => sensors.sensors()[0].as_id,
    };

    let mut sim = Sim::with_recorder(Arc::clone(&topology), recorder.clone());
    sensors.register(&mut sim);
    sim.set_observer(observer);
    sim.converge_for(&sensors.as_ids());
    // Drop the initial-convergence chatter; trials only want event-driven
    // messages.
    sim.take_observed();
    sim.take_igp_events();

    // Probe once without blocking to learn the probed ASes and the
    // diagnosability of the placement.
    let plain_mesh = probe_mesh(&sim, &sensors, &BTreeSet::new());
    let diagnosability = mesh_diagnosability(&plain_mesh);
    let probed_ases: BTreeSet<AsId> = plain_mesh
        .traceroutes
        .iter()
        .flat_map(|t| t.hops.iter().filter_map(|h| h.router()))
        .map(|r| topology.as_of_router(r))
        .collect();

    // Sample the blocking and Looking-Glass sets among probed ASes. AS-X
    // never blocks itself and always has its own routing data ("its own
    // BGP information" acts as its Looking Glass).
    let mut blockable: Vec<AsId> = probed_ases
        .iter()
        .copied()
        .filter(|&a| a != observer)
        .collect();
    blockable.shuffle(rng);
    let n_blocked = (cfg.blocked_frac * blockable.len() as f64).round() as usize;
    let blocked: BTreeSet<AsId> = blockable[..n_blocked.min(blockable.len())]
        .iter()
        .copied()
        .collect();

    let mut lg_pool: Vec<AsId> = probed_ases.iter().copied().collect();
    lg_pool.shuffle(rng);
    let n_lg = (cfg.lg_frac * lg_pool.len() as f64).round() as usize;
    let mut lg_available: BTreeSet<AsId> =
        lg_pool[..n_lg.min(lg_pool.len())].iter().copied().collect();
    lg_available.insert(observer);

    // With no blocking the blocked-aware mesh is the plain mesh: reuse it
    // instead of probing the same network a second time.
    let mesh_before = if blocked.is_empty() {
        plain_mesh
    } else {
        probe_mesh(&sim, &sensors, &blocked)
    };

    let probed = probed_links(&mesh_before);
    PlacementContext {
        sim,
        sensors,
        observer,
        blocked,
        lg_available,
        mesh_before,
        diagnosability,
        probed_links: probed,
        replay: Mutex::new(BTreeMap::new()),
    }
}

/// Per-algorithm evaluations for one failure trial.
#[derive(Clone, Debug, PartialEq)]
pub struct TrialResult {
    /// The injected failure.
    pub failure: Failure,
    /// Ground-truth failure sites restricted to probed links.
    pub failed_sites: BTreeSet<LinkId>,
    /// Number of sensor pairs that lost reachability.
    pub failed_paths: usize,
    /// Plain Boolean tomography.
    pub tomo: Evaluation,
    /// Logical links + reroute sets.
    pub nd_edge: Evaluation,
    /// ND-edge + AS-X control plane.
    pub nd_bgpigp: Evaluation,
    /// ND-bgpigp + Looking Glass (only when traceroute blocking is on).
    pub nd_lg: Option<Evaluation>,
    /// For router-failure trials: did ND-edge's hypothesis touch the failed
    /// router (the paper's router-detection criterion)?
    pub router_detected: Option<bool>,
}

/// Maximum failure-sampling attempts before giving up on a trial. The
/// troubleshooter is only invoked for failures that actually cause
/// unreachability, so reroutable-only samples are redrawn (as in the
/// paper, which counts only unreachability-causing failures).
const MAX_ATTEMPTS: usize = 200;

/// Per-placement scratch state of the production trial loop: one CoW clone
/// of the healthy simulator plus its snapshot, reused across every trial
/// and sampling attempt of the placement (a worker rebuilds it only when
/// it switches placements). Restoring between attempts is a handful of
/// `Arc` bumps; injecting is the incremental reconvergence path.
pub struct TrialScratch {
    sim: Sim,
    baseline: SimSnapshot,
    dirty: bool,
}

impl TrialScratch {
    /// Clones the placement's healthy simulator and snapshots it.
    pub fn new(ctx: &PlacementContext) -> Self {
        let sim = ctx.sim.clone();
        let baseline = sim.snapshot();
        TrialScratch {
            sim,
            baseline,
            dirty: false,
        }
    }
}

/// Memo key of a failure, for the per-placement replay memo. Only classes
/// whose identity is a plain id tuple are memoized; misconfigurations (and
/// combinations containing them) carry prefixes and always re-simulate.
fn failure_key(f: &Failure) -> Option<Vec<u64>> {
    match f {
        Failure::Links(ls) => Some(
            std::iter::once(0u64)
                .chain(ls.iter().map(|l| l.index() as u64))
                .collect(),
        ),
        Failure::Router(r) => Some(vec![1, r.index() as u64]),
        Failure::Misconfig(_) | Failure::Combined(_) => None,
    }
}

/// Runs one failure trial: samples failures until one causes
/// unreachability, then diagnoses and scores. Returns `None` if no
/// unreachability-causing failure of the class could be drawn.
///
/// Convenience wrapper over [`run_trial_with`] that builds a fresh
/// [`TrialScratch`] for this one trial; loops should hold a scratch per
/// placement and call [`run_trial_with`] directly.
pub fn run_trial(ctx: &PlacementContext, cfg: &RunConfig, rng: &mut StdRng) -> Option<TrialResult> {
    let mut scratch = TrialScratch::new(ctx);
    run_trial_with(ctx, cfg, rng, &mut scratch)
}

/// The production trial loop: persistent scratch simulator, incremental
/// reconvergence ([`apply_failure`]), and the placement's replay memo.
/// Produces results identical to [`run_trial_reference`] for the same
/// RNG seed — `tests/parallel_parity.rs` holds the two against each other.
pub fn run_trial_with(
    ctx: &PlacementContext,
    cfg: &RunConfig,
    rng: &mut StdRng,
    scratch: &mut TrialScratch,
) -> Option<TrialResult> {
    let recorder = ctx.sim.recorder().clone();
    // With a live recorder every trial must do (and report) its real work
    // — counters, spans, and trace events alike — so the memo only serves
    // runs without any instrumentation sink.
    let memo_live = !recorder.enabled() && !recorder.trace_enabled();
    for attempt in 0..MAX_ATTEMPTS {
        let failure = sample_failure_from(
            &ctx.sim,
            &ctx.probed_links,
            &ctx.mesh_before,
            &ctx.sensors,
            cfg.failure,
            rng,
        )?;
        let key = if memo_live {
            failure_key(&failure)
        } else {
            None
        };
        if let Some(k) = &key {
            let memo = ctx.replay.lock().expect("replay memo poisoned");
            match memo.get(k) {
                Some(Some(result)) => return Some(result.clone()),
                Some(None) => continue, // known fully-rerouted: redraw
                None => {}
            }
        }
        recorder.event(names::EV_TRIAL_ATTEMPT, || {
            netdiag_obs::EventPayload::new()
                .field("attempt", attempt)
                .field("kind", failure_kind(&failure))
        });
        if scratch.dirty {
            scratch.sim.restore(&scratch.baseline);
        }
        scratch.dirty = true;
        {
            let _phase = netdiag_obs::phase_scope(netdiag_obs::Phase::Inject);
            let _inject = recorder.span(names::TRIAL_INJECT);
            apply_failure(&mut scratch.sim, &failure);
        }
        let mesh_after = {
            let _phase = netdiag_obs::phase_scope(netdiag_obs::Phase::Measure);
            let _measure = recorder.span(names::TRIAL_MEASURE);
            probe_mesh(&scratch.sim, &ctx.sensors, &ctx.blocked)
        };
        if mesh_after.failed_count() == 0 {
            if let Some(k) = key {
                ctx.replay
                    .lock()
                    .expect("replay memo poisoned")
                    .insert(k, None);
            }
            continue; // fully rerouted: no unreachability, redraw
        }
        let result = score_trial(ctx, cfg, &mut scratch.sim, failure, mesh_after, &recorder);
        if let Some(k) = key {
            ctx.replay
                .lock()
                .expect("replay memo poisoned")
                .insert(k, Some(result.clone()));
        }
        return Some(result);
    }
    None
}

/// The pre-incremental trial loop, frozen as the behavioral baseline: a
/// fresh clone + snapshot per call, full reconvergence per attempt
/// ([`apply_failure_full`]), per-attempt probed-set recomputation, and no
/// memo. [`collect_trials_sequential`](crate::figures::collect_trials_sequential)
/// runs on this path; benches measure the production loop against it.
pub fn run_trial_reference(
    ctx: &PlacementContext,
    cfg: &RunConfig,
    rng: &mut StdRng,
) -> Option<TrialResult> {
    let recorder = ctx.sim.recorder().clone();
    let mut broken = ctx.sim.clone();
    let baseline = broken.snapshot();
    let mut first_attempt = true;
    for attempt in 0..MAX_ATTEMPTS {
        let failure = sample_failure(&ctx.sim, &ctx.mesh_before, &ctx.sensors, cfg.failure, rng)?;
        if !first_attempt {
            broken.restore(&baseline);
        }
        first_attempt = false;
        recorder.event(names::EV_TRIAL_ATTEMPT, || {
            netdiag_obs::EventPayload::new()
                .field("attempt", attempt)
                .field("kind", failure_kind(&failure))
        });
        {
            let _phase = netdiag_obs::phase_scope(netdiag_obs::Phase::Inject);
            let _inject = recorder.span(names::TRIAL_INJECT);
            apply_failure_full(&mut broken, &failure);
        }
        let mesh_after = {
            let _phase = netdiag_obs::phase_scope(netdiag_obs::Phase::Measure);
            let _measure = recorder.span(names::TRIAL_MEASURE);
            probe_mesh(&broken, &ctx.sensors, &ctx.blocked)
        };
        if mesh_after.failed_count() == 0 {
            continue; // fully rerouted: no unreachability, redraw
        }
        return Some(score_trial(
            ctx,
            cfg,
            &mut broken,
            failure,
            mesh_after,
            &recorder,
        ));
    }
    None
}

/// Shared tail of a successful trial: drains the broken simulator's
/// observation buffers, runs every diagnosis algorithm, and scores them
/// against ground truth. Identical for the production and reference loops.
fn score_trial(
    ctx: &PlacementContext,
    cfg: &RunConfig,
    broken: &mut Sim,
    failure: Failure,
    mesh_after: ProbeMesh,
    recorder: &RecorderHandle,
) -> TrialResult {
    let topology = ctx.sim.topology();
    let observed = broken.take_observed();
    let igp_events = broken.take_igp_events();
    let obs = observations(&ctx.sensors, &ctx.mesh_before, &mesh_after);
    let feed = routing_feed(topology, ctx.observer, &observed, &igp_events);
    let truth = TruthMap::build(topology, &ctx.mesh_before, &mesh_after);
    let ip2as = TruthIpToAs { topology };

    let failed_sites: BTreeSet<LinkId> = failure
        .all_failure_sites(&ctx.sim)
        .into_iter()
        .filter(|l| truth.probed_links().contains(l))
        .collect();

    let diagnose_phase = netdiag_obs::phase_scope(netdiag_obs::Phase::Diagnose);
    let diagnose_span = recorder.span(names::TRIAL_DIAGNOSE);
    let d_tomo = tomo_recorded(&obs, &ip2as, recorder);
    let d_edge = nd_edge_recorded(&obs, &ip2as, cfg.diagnostics.weights, recorder);
    let d_bgpigp = nd_bgpigp_recorded(&obs, &ip2as, &feed, cfg.diagnostics.weights, recorder);

    let router_detected = match failure {
        Failure::Router(r) => {
            let links: BTreeSet<LinkId> = topology.router(r).links.iter().copied().collect();
            let hyp = truth.hypothesis_links(&d_edge);
            Some(hyp.intersection(&links).next().is_some())
        }
        _ => None,
    };

    let nd_lg_eval = if ctx.blocked.is_empty() {
        None
    } else {
        // The troubleshooting system records Looking Glass AS paths
        // alongside its periodic baseline mesh, so UH mapping of the
        // pre-failure paths uses the pre-failure LG views (after the
        // failure, sources toward dead destinations have no AS path to
        // report at all).
        let lg = SimLookingGlass {
            sim: &ctx.sim,
            available: &ctx.lg_available,
        };
        let d = nd_lg_recorded(&obs, &ip2as, &feed, &lg, cfg.diagnostics.weights, recorder);
        Some(evaluate(topology, &truth, &d, &failed_sites))
    };
    drop(diagnose_span);
    drop(diagnose_phase);

    TrialResult {
        failed_paths: mesh_after.failed_count(),
        tomo: evaluate(topology, &truth, &d_tomo, &failed_sites),
        nd_edge: evaluate(topology, &truth, &d_edge, &failed_sites),
        nd_bgpigp: evaluate(topology, &truth, &d_bgpigp, &failed_sites),
        nd_lg: nd_lg_eval,
        router_detected,
        failure,
        failed_sites,
    }
}

/// Short event label for a failure class.
fn failure_kind(f: &Failure) -> &'static str {
    match f {
        Failure::Links(_) => "links",
        Failure::Router(_) => "router",
        Failure::Misconfig(_) => "misconfig",
        Failure::Combined(_) => "combined",
    }
}
