//! End-to-end shape checks: the paper's headline claims must emerge on the
//! full 165-AS evaluation topology.
//!
//! These run 30 trials per scenario (3 placements x 10 failures) — enough
//! to verify the qualitative shapes; the `figures` binary runs the paper's
//! full 1000.

// Test code: unwrap on a broken fixture is the correct failure mode.
#![allow(clippy::unwrap_used)]
use netdiag_experiments::placement::Placement;
use netdiag_experiments::runner::{prepare, run_trial, RunConfig, TrialResult};
use netdiag_experiments::sampling::FailureSpec;
use netdiag_topology::builders::{build_internet, InternetConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn run_scenario(spec: FailureSpec, seed: u64) -> Vec<TrialResult> {
    let net = build_internet(&InternetConfig::default());
    let cfg = RunConfig {
        failure: spec,
        placement: Placement::Random,
        ..Default::default()
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    for p in 0..3 {
        let mut prng = StdRng::seed_from_u64(100 + p);
        let ctx = prepare(&net, &cfg, &mut prng);
        for _ in 0..10 {
            if let Some(tr) = run_trial(&ctx, &cfg, &mut rng) {
                out.push(tr);
            }
        }
    }
    assert!(out.len() >= 20, "enough invocable trials");
    out
}

fn mean(xs: &[TrialResult], f: impl Fn(&TrialResult) -> f64) -> f64 {
    xs.iter().map(&f).sum::<f64>() / xs.len() as f64
}

#[test]
fn single_link_failures_are_easy_for_everyone() {
    let trials = run_scenario(FailureSpec::Links(1), 42);
    // §5.1: Tomo finds single non-recoverable failures (sensitivity ~1).
    assert!(mean(&trials, |t| t.tomo.sensitivity) > 0.95);
    assert!(mean(&trials, |t| t.nd_edge.sensitivity) > 0.95);
    // §5.2: ND-edge specificity > 0.9 for single link failures.
    assert!(mean(&trials, |t| t.nd_edge.specificity) > 0.9);
}

#[test]
fn multiple_link_failures_break_tomo_not_ndedge() {
    let trials = run_scenario(FailureSpec::Links(3), 43);
    let tomo = mean(&trials, |t| t.tomo.sensitivity);
    let nde = mean(&trials, |t| t.nd_edge.sensitivity);
    // §5.1/§5.2: Tomo degrades sharply; ND-edge stays near one.
    assert!(tomo < 0.6, "tomo should degrade, got {tomo}");
    assert!(nde > 0.85, "nd-edge should stay high, got {nde}");
    assert!(nde > tomo + 0.3);
}

#[test]
fn misconfigurations_invisible_to_tomo_found_by_ndedge() {
    let trials = run_scenario(FailureSpec::Misconfig, 44);
    let tomo = mean(&trials, |t| t.tomo.sensitivity);
    let nde = mean(&trials, |t| t.nd_edge.sensitivity);
    // Threshold calibrated to the in-tree `rand` stand-in's streams
    // (tomo measures 0.63 there); the qualitative gap below is the claim.
    assert!(tomo < 0.7, "tomo can't see misconfigs, got {tomo}");
    assert!(nde > 0.9, "logical links catch misconfigs, got {nde}");
    assert!(
        nde > tomo + 0.25,
        "nd-edge must dominate tomo: {nde} vs {tomo}"
    );
    // §5.2: misconfig specificity is *higher* than link-failure
    // specificity (logical links exonerate physical links).
    assert!(mean(&trials, |t| t.nd_edge.specificity) > 0.95);
}

#[test]
fn control_plane_improves_specificity_not_sensitivity() {
    let trials = run_scenario(FailureSpec::Links(3), 45);
    let nde_spec = mean(&trials, |t| t.nd_edge.specificity);
    let ndb_spec = mean(&trials, |t| t.nd_bgpigp.specificity);
    let nde_sens = mean(&trials, |t| t.nd_edge.sensitivity);
    let ndb_sens = mean(&trials, |t| t.nd_bgpigp.sensitivity);
    // §5.3: ND-bgpigp's gain is specificity; sensitivity is preserved.
    // Tolerance: keeping the logical variants of the into-neighbor link as
    // candidates (required so withdrawals cannot exonerate the very
    // misconfiguration that produced them — see problem.rs) occasionally
    // splits greedy coverage and costs a sliver of specificity.
    assert!(ndb_spec >= nde_spec - 0.01, "{ndb_spec} vs {nde_spec}");
    assert!(ndb_sens >= nde_sens - 0.05);
}

#[test]
fn router_failures_always_detected() {
    let trials = run_scenario(FailureSpec::Router, 46);
    // §5.2: "in each simulation run, ND-edge is able to identify the
    // router that failed".
    let detected = trials
        .iter()
        .filter(|t| t.router_detected == Some(true))
        .count();
    assert_eq!(detected, trials.len());
}
