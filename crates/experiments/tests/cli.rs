//! Integration tests of the two command-line binaries, spawned as real
//! processes (Cargo exposes their paths via `CARGO_BIN_EXE_*`).

// Test code: unwrap on a broken fixture is the correct failure mode.
#![allow(clippy::unwrap_used)]
use std::fs;
use std::path::PathBuf;
use std::process::Command;

fn figures() -> Command {
    Command::new(env!("CARGO_BIN_EXE_figures"))
}

fn netdiag() -> Command {
    Command::new(env!("CARGO_BIN_EXE_netdiag"))
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("netdiag_cli_{name}"));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn figures_quick_writes_csv_and_prints_table() {
    let dir = temp_dir("fig5");
    let out = figures()
        .args(["fig5", "--quick", "--out", dir.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("fig5_placement_diagnosability"));
    assert!(stdout.contains("same_as"));
    let csv = fs::read_to_string(dir.join("fig5_placement_diagnosability.csv")).unwrap();
    assert!(csv.starts_with("sensors,"));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn figures_rejects_bad_arguments() {
    for args in [vec!["nope"], vec!["fig5", "--placements", "abc"], vec![]] {
        let out = figures().args(&args).output().unwrap();
        assert_eq!(out.status.code(), Some(2), "args {args:?}");
        assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
    }
}

#[test]
fn netdiag_simulate_diagnose_roundtrip() {
    let dir = temp_dir("roundtrip");
    let out = netdiag()
        .args([
            "simulate",
            "--out",
            dir.to_str().unwrap(),
            "--failure",
            "links:1",
            "--seed",
            "11",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    for f in [
        "sensors.txt",
        "before.txt",
        "after.txt",
        "feed.txt",
        "lg.txt",
        "ip2as.txt",
        "truth.txt",
        "topology.dot",
    ] {
        assert!(dir.join(f).exists(), "{f} missing");
    }

    // Diagnose with every algorithm; nd-edge must include the true link.
    let truth = fs::read_to_string(dir.join("truth.txt")).unwrap();
    let failed_addr = truth
        .lines()
        .find(|l| l.starts_with("failed"))
        .unwrap()
        .split_whitespace()
        .nth(2)
        .unwrap()
        .to_string();
    for algo in ["tomo", "nd-edge", "nd-bgpigp", "nd-lg"] {
        let out = netdiag()
            .args(["diagnose", "--dir", dir.to_str().unwrap(), "--algo", algo])
            .output()
            .unwrap();
        assert!(out.status.success(), "{algo}");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("NetDiagnoser report"), "{algo}");
        if algo == "nd-edge" {
            assert!(
                stdout.contains(&failed_addr),
                "nd-edge must suspect the failed link's interface {failed_addr}:\n{stdout}"
            );
        }
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn netdiag_custom_topology() {
    let dir = temp_dir("custom");
    let topo = dir.join("net.txt");
    fs::write(
        &topo,
        "as Core core\nas S1 stub\nas S2 stub\n\
         router Core c1\nrouter S1 a1\nrouter S2 b1\n\
         provider c1 a1\nprovider c1 b1\n",
    )
    .unwrap();
    let out_dir = dir.join("scenario");
    let out = netdiag()
        .args([
            "simulate",
            "--out",
            out_dir.to_str().unwrap(),
            "--topology",
            topo.to_str().unwrap(),
            "--sensors",
            "2",
            "--seed",
            "3",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = netdiag()
        .args(["diagnose", "--dir", out_dir.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn netdiag_rejects_bad_input() {
    // Missing directory.
    let out = netdiag()
        .args(["diagnose", "--dir", "/definitely/not/here"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    // Bad algorithm.
    let dir = temp_dir("badalgo");
    netdiag()
        .args(["simulate", "--out", dir.to_str().unwrap(), "--seed", "5"])
        .output()
        .unwrap();
    let out = netdiag()
        .args([
            "diagnose",
            "--dir",
            dir.to_str().unwrap(),
            "--algo",
            "bogus",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    // Corrupt scenario file: parse error names the line.
    let before = dir.join("before.txt");
    let mut text = fs::read_to_string(&before).unwrap();
    text.insert_str(0, "garbage-line\n");
    fs::write(&before, text).unwrap();
    let out = netdiag()
        .args(["diagnose", "--dir", dir.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("parse error: line 1"));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn netdiag_rejects_degenerate_custom_topology() {
    let dir = temp_dir("degenerate");
    let topo = dir.join("net.txt");
    // No core AS at all.
    fs::write(
        &topo,
        "as S1 stub\nas S2 stub\nrouter S1 a1\nrouter S2 b1\npeer a1 b1\n",
    )
    .unwrap();
    let out = netdiag()
        .args([
            "simulate",
            "--out",
            dir.join("x").to_str().unwrap(),
            "--topology",
            topo.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("at least one core"));
    let _ = fs::remove_dir_all(&dir);
}
