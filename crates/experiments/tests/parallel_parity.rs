//! Parallel trial collection must be a pure wall-clock optimisation:
//! [`collect_trials`] (worker pool over placements x trials) and
//! [`collect_trials_sequential`] (single thread, same derived seeds) must
//! return identical results in identical order.

// Test code: unwrap on a broken fixture is the correct failure mode.
#![allow(clippy::unwrap_used)]
use netdiag_experiments::figures::{collect_trials, collect_trials_sequential, FigureConfig};
use netdiag_experiments::runner::RunConfig;
use netdiag_experiments::sampling::FailureSpec;

#[test]
fn parallel_equals_sequential() {
    let fc = FigureConfig::quick();
    let net = fc.internet();
    let cfg = RunConfig::default();
    let par = collect_trials(&net, &cfg, &fc);
    let seq = collect_trials_sequential(&net, &cfg, &fc);
    assert_eq!(par, seq);
    assert!(!par.is_empty(), "quick config must yield trials");
}

#[test]
fn parallel_equals_sequential_with_blocking() {
    // Blocking exercises the Looking-Glass branch of run_trial too.
    let fc = FigureConfig {
        placements: 2,
        failures_per_placement: 3,
        ..FigureConfig::default()
    };
    let net = fc.internet();
    let cfg = RunConfig {
        blocked_frac: 0.3,
        failure: FailureSpec::Links(2),
        ..RunConfig::default()
    };
    let par = collect_trials(&net, &cfg, &fc);
    let seq = collect_trials_sequential(&net, &cfg, &fc);
    assert_eq!(par, seq);
}
