//! Structural smoke tests for every figure regenerator: each must run at a
//! tiny trial count and emit tables with the documented shape.

// Test code: unwrap on a broken fixture is the correct failure mode.
#![allow(clippy::unwrap_used)]
use netdiag_experiments::figures::{self, FigureConfig, FigureOutput};

fn tiny() -> FigureConfig {
    FigureConfig {
        placements: 1,
        failures_per_placement: 2,
        ..FigureConfig::default()
    }
}

fn names(outputs: &[FigureOutput]) -> Vec<&str> {
    outputs.iter().map(|o| o.name.as_str()).collect()
}

#[test]
fn fig5_shape() {
    let out = figures::fig5::run(&tiny());
    assert_eq!(names(&out), vec!["fig5_placement_diagnosability"]);
    assert_eq!(out[0].table.len(), figures::fig5::SENSOR_COUNTS.len());
    let csv = out[0].table.to_csv();
    assert!(csv.starts_with("sensors,same_as,distant_as,distant_as_split,random"));
}

#[test]
fn fig6_shape() {
    let out = figures::fig6::run(&tiny());
    assert_eq!(
        names(&out),
        vec![
            "fig6_tomo_sensitivity_links",
            "fig6_tomo_sensitivity_misconfig"
        ]
    );
    // CDF tables have CDF_STEPS+1 rows and monotone columns.
    for o in &out {
        assert_eq!(o.table.len(), figures::CDF_STEPS + 1);
        let csv = o.table.to_csv();
        let last = csv.lines().last().unwrap();
        // CDFs end at P(X<=1) = 1.
        for cell in last.split(',').skip(1) {
            assert_eq!(cell, "1.0000", "CDF must reach 1 at x=1: {csv}");
        }
    }
}

#[test]
fn fig7_to_fig10_shapes() {
    for (run, expected) in [
        (
            figures::fig7::run as fn(&FigureConfig) -> Vec<FigureOutput>,
            vec!["fig7_sensitivity_3link", "fig7_sensitivity_misconfig_link"],
        ),
        (figures::fig8::run, vec!["fig8_ndedge_specificity"]),
        (
            figures::fig10::run,
            vec!["fig10_sensitivity_3link", "fig10_specificity_3link"],
        ),
    ] {
        let out = run(&tiny());
        assert_eq!(names(&out), expected);
        for o in &out {
            assert_eq!(o.table.len(), figures::CDF_STEPS + 1);
        }
    }
}

#[test]
fn fig9_shape() {
    let out = figures::fig9::run(&tiny());
    assert_eq!(names(&out), vec!["fig9_diagnosability_vs_specificity"]);
    assert!(!out[0].table.is_empty());
    let csv = out[0].table.to_csv();
    assert!(csv.starts_with("sensors,diagnosability,nd_edge_specificity"));
}

#[test]
fn fig11_and_fig12_shapes() {
    let out = figures::fig11::run(&tiny());
    assert_eq!(names(&out), vec!["fig11_blocked_traceroutes"]);
    assert_eq!(out[0].table.len(), figures::fig11::BLOCKED_FRACTIONS.len());

    let out = figures::fig12::run(&tiny());
    assert_eq!(names(&out), vec!["fig12_looking_glass_fraction"]);
    assert_eq!(out[0].table.len(), figures::fig12::LG_FRACTIONS.len());
}

#[test]
fn claims_ablations_robustness_scalability_shapes() {
    let out = figures::claims::run(&tiny());
    assert_eq!(names(&out), vec!["claims"]);
    assert!(out[0].table.len() >= 10, "every in-text claim present");

    let out = figures::ablations::run(&tiny());
    assert_eq!(
        names(&out),
        vec!["ablation_ndedge_weights", "ablation_greedy_vs_exact"]
    );
    assert_eq!(out[0].table.len(), figures::ablations::WEIGHTS.len());

    let out = figures::robustness::run(&tiny());
    assert_eq!(
        names(&out),
        vec![
            "robustness_sensor_sweep",
            "robustness_observer_position",
            "robustness_tier2_style"
        ]
    );
    assert_eq!(out[1].table.len(), 3);
    assert_eq!(out[2].table.len(), 3);

    let out = figures::scalability::run(&tiny());
    assert_eq!(names(&out), vec!["scalability_logical_links"]);
    assert!(!out[0].table.is_empty());
}

#[test]
fn every_figure_output_is_indexed_in_the_summary() {
    // Regenerate everything at tiny scale and check each emitted table
    // name appears in the summary's section index (guards against adding
    // a figure and forgetting the digest).
    let fc = tiny();
    let stems = netdiag_experiments::summary::known_stems();
    let all: Vec<fn(&FigureConfig) -> Vec<FigureOutput>> = vec![
        figures::fig5::run,
        figures::fig6::run,
        figures::fig7::run,
        figures::fig8::run,
        figures::fig9::run,
        figures::fig10::run,
        figures::fig11::run,
        figures::fig12::run,
        figures::claims::run,
        figures::ablations::run,
        figures::robustness::run,
        figures::scalability::run,
    ];
    for run in all {
        for out in run(&fc) {
            assert!(
                stems.contains(&out.name.as_str()),
                "figure output {:?} missing from summary::SECTIONS",
                out.name
            );
        }
    }
}
