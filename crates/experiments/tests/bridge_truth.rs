//! Unit-level tests of the bridge (simulator -> diagnoser conversion) and
//! the ground-truth evaluation mapping.

// Test code: unwrap on a broken fixture is the correct failure mode.
#![allow(clippy::unwrap_used)]
use std::collections::BTreeSet;
use std::sync::Arc;

use netdiag_bgp::{ObservedKind, ObservedMsg};
use netdiag_experiments::bridge::{
    observations, routing_feed, to_probe_path, SimLookingGlass, TruthIpToAs,
};
use netdiag_experiments::truth::{evaluate, mesh_diagnosability, TruthMap};
use netdiag_netsim::{probe_mesh, IgpLinkDown, SensorSet, Sim};
use netdiag_topology::{AsId, AsKind, LinkRelationship, SensorId, TopologyBuilder};
use netdiagnoser::{nd_edge, Epoch, Hop, IpToAs, LookingGlass, PathRef, Weights};

/// S1 - T(2 routers) - S2 with sensors on the stubs.
fn world() -> (Sim, SensorSet) {
    let mut b = TopologyBuilder::new();
    let t2 = b.add_as(AsKind::Tier2, "T");
    let s1 = b.add_as(AsKind::Stub, "S1");
    let s2 = b.add_as(AsKind::Stub, "S2");
    let ta = b.add_router(t2, "ta");
    let tb = b.add_router(t2, "tb");
    b.add_intra_link(ta, tb, 3);
    let s1r = b.add_router(s1, "s1r");
    let s2r = b.add_router(s2, "s2r");
    b.add_inter_link(ta, s1r, LinkRelationship::ProviderCustomer);
    b.add_inter_link(tb, s2r, LinkRelationship::ProviderCustomer);
    let t = Arc::new(b.build().unwrap());
    let mut sim = Sim::new(Arc::clone(&t));
    sim.converge_all();
    let sensors = SensorSet::place(&t, &[(s1, s1r), (s2, s2r)]);
    sensors.register(&mut sim);
    (sim, sensors)
}

#[test]
fn probe_path_conversion_strips_ground_truth() {
    let (sim, sensors) = world();
    let blocked: BTreeSet<AsId> = [AsId(0)].into_iter().collect();
    let mesh = probe_mesh(&sim, &sensors, &blocked);
    let p = to_probe_path(&mesh.traceroutes[0]);
    assert_eq!(p.hops.len(), mesh.traceroutes[0].hops.len());
    // Stars survive as stars, addresses as addresses.
    for (ours, theirs) in p.hops.iter().zip(&mesh.traceroutes[0].hops) {
        match theirs.addr() {
            Some(a) => assert_eq!(*ours, Hop::Addr(a)),
            None => assert_eq!(*ours, Hop::Star),
        }
    }
}

#[test]
fn truth_map_maps_every_consecutive_pair() {
    let (sim, sensors) = world();
    let mesh = probe_mesh(&sim, &sensors, &BTreeSet::new());
    let truth = TruthMap::build(sim.topology(), &mesh, &mesh);
    let obs = observations(&sensors, &mesh, &mesh);
    // Every edge of every converted path maps to a ground-truth link,
    // except host edges (the final Dest hop).
    for (i, p) in obs.before.paths.iter().enumerate() {
        let links = netdiag_experiments::truth::path_links_via_truth(
            &truth,
            p,
            PathRef {
                epoch: Epoch::Before,
                index: i,
            },
        );
        let mapped = links.iter().filter(|l| l.is_some()).count();
        let unmapped = links.len() - mapped;
        assert_eq!(unmapped, 1, "only the host edge is unmapped");
        assert_eq!(mapped, p.hops.len() - 2);
    }
    assert_eq!(truth.probed_links().len(), 3);
    assert_eq!(truth.probed_ases().len(), 3);
}

#[test]
fn evaluation_scores_perfect_diagnosis() {
    let (sim, sensors) = world();
    let before = probe_mesh(&sim, &sensors, &BTreeSet::new());
    // Fail S2's uplink: non-recoverable.
    let s2r = sensors.get(SensorId(1)).router;
    let uplink = sim.topology().router(s2r).links[0];
    let mut broken = sim.clone();
    broken.fail_link(uplink);
    let after = probe_mesh(&broken, &sensors, &BTreeSet::new());
    let obs = observations(&sensors, &before, &after);
    let topology = sim.topology();
    let truth = TruthMap::build(topology, &before, &after);
    let d = nd_edge(&obs, &ip2as(topology), Weights::default());
    let failed = BTreeSet::from([uplink]);
    let e = evaluate(topology, &truth, &d, &failed);
    assert_eq!(e.sensitivity, 1.0);
    assert!(e.as_sensitivity > 0.0);
    assert!(e.hypothesis_size >= 1);
    assert!((0.0..=1.0).contains(&e.specificity));
}

fn ip2as(topology: &netdiag_topology::Topology) -> TruthIpToAs<'_> {
    TruthIpToAs { topology }
}

#[test]
fn routing_feed_extracts_withdrawals_with_neighbor_addr() {
    let (sim, _) = world();
    let topology = sim.topology();
    // Fabricate an observed withdrawal: ta (observer AS 0) heard from s1r.
    let ta = netdiag_topology::RouterId(0);
    let s1r = netdiag_topology::RouterId(2);
    let link = topology.link_between(ta, s1r).unwrap();
    let msg = ObservedMsg {
        at: ta,
        from: s1r,
        from_as: AsId(1),
        prefix: topology.as_node(AsId(1)).prefix,
        kind: ObservedKind::Withdraw,
        seq: 0,
    };
    let update = ObservedMsg {
        kind: ObservedKind::Update,
        seq: 1,
        ..msg.clone()
    };
    let feed = routing_feed(topology, AsId(0), &[msg, update], &[]);
    // Updates are not withdrawals; one entry with the neighbor-side addr.
    assert_eq!(feed.withdrawals.len(), 1);
    assert_eq!(
        feed.withdrawals[0].from_addr,
        topology.link(link).addr_of(s1r)
    );
}

#[test]
fn routing_feed_filters_igp_events_to_observer() {
    let (sim, _) = world();
    let topology = sim.topology();
    let intra = topology.intra_links_of(AsId(0)).next().unwrap().id;
    let events = [
        IgpLinkDown {
            link: intra,
            as_id: AsId(0),
        },
        IgpLinkDown {
            link: intra,
            as_id: AsId(1), // some other AS's event: invisible to AS 0
        },
    ];
    let feed = routing_feed(topology, AsId(0), &[], &events);
    assert_eq!(feed.igp_link_down.len(), 1);
    let l = topology.link(intra);
    assert_eq!(feed.igp_link_down[0].addr_a, l.addr_a);
    assert_eq!(feed.igp_link_down[0].addr_b, l.addr_b);
}

#[test]
fn sim_looking_glass_respects_availability() {
    let (sim, sensors) = world();
    let dst = sensors.get(SensorId(1)).addr;
    let every_as: BTreeSet<AsId> = [AsId(0), AsId(1), AsId(2)].into_iter().collect();
    let all = SimLookingGlass {
        sim: &sim,
        available: &every_as,
    };
    assert!(all.as_path(AsId(1), dst).is_some());
    let empty = BTreeSet::new();
    let none = SimLookingGlass {
        sim: &sim,
        available: &empty,
    };
    assert_eq!(none.as_path(AsId(1), dst), None);
}

#[test]
fn diagnosability_of_tiny_world() {
    let (sim, sensors) = world();
    let mesh = probe_mesh(&sim, &sensors, &BTreeSet::new());
    let d = mesh_diagnosability(&mesh);
    // 3 probed links; the two stub uplinks have distinct path sets, the
    // middle link is crossed by everything: all three sets distinct = 1.0.
    assert!(d > 0.0 && d <= 1.0);
}

#[test]
fn truth_ip_to_as_is_ground_truth() {
    let (sim, sensors) = world();
    let topology = sim.topology();
    let svc = TruthIpToAs { topology };
    for l in topology.links() {
        assert_eq!(svc.as_of(l.addr_a), Some(topology.as_of_router(l.a)));
        assert_eq!(svc.as_of(l.addr_b), Some(topology.as_of_router(l.b)));
    }
    assert_eq!(
        svc.as_of(sensors.get(SensorId(0)).addr),
        Some(sensors.get(SensorId(0)).as_id)
    );
}
