//! Trace determinism: the JSONL event log of a run must be byte-identical
//! across repeated runs and across sequential vs parallel trial
//! collection (events carry logical sequence numbers, never wall time),
//! and the Chrome-trace export must be well-formed JSON.

// Test code: unwrap on a broken fixture is the correct failure mode.
#![allow(clippy::unwrap_used)]
use netdiag_experiments::figures::{collect_trials, collect_trials_sequential, FigureConfig};
use netdiag_experiments::runner::RunConfig;
use netdiag_obs::json::{self, Json};
use netdiag_obs::{RecorderHandle, TraceRecorder};

fn traced_config() -> (FigureConfig, std::sync::Arc<TraceRecorder>) {
    let (recorder, tracer) = RecorderHandle::tracing();
    let fc = FigureConfig {
        placements: 2,
        failures_per_placement: 2,
        recorder,
        ..FigureConfig::default()
    };
    (fc, tracer)
}

#[test]
fn two_runs_emit_byte_identical_jsonl() {
    let (fc1, t1) = traced_config();
    let net = fc1.internet();
    let cfg = RunConfig::default();
    collect_trials_sequential(&net, &cfg, &fc1);

    let (fc2, t2) = traced_config();
    collect_trials_sequential(&net, &cfg, &fc2);

    assert_eq!(t1.dropped(), 0, "ring must not overflow in this config");
    let jsonl = t1.to_jsonl();
    assert!(!jsonl.is_empty(), "traced run must emit events");
    assert_eq!(jsonl, t2.to_jsonl());
}

#[test]
fn parallel_and_single_thread_emit_byte_identical_jsonl() {
    // Both legs run the production (incremental) path — one worker vs a
    // pool — so this isolates scheduling. The full-reconvergence reference
    // emits different routing events by design (whole-AS SPF recomputes
    // instead of delta runs); only its *results* are compared against the
    // pool, in tests/parallel_parity.rs.
    let (fc_one, t_one) = traced_config();
    let fc_one = FigureConfig {
        threads: 1,
        ..fc_one
    };
    let net = fc_one.internet();
    let cfg = RunConfig::default();
    let one = collect_trials(&net, &cfg, &fc_one);

    let (fc_par, t_par) = traced_config();
    let fc_par = FigureConfig {
        threads: 4, // force a real pool even on single-core machines
        ..fc_par
    };
    let par = collect_trials(&net, &cfg, &fc_par);

    assert_eq!(one, par);
    assert_eq!(t_one.dropped(), 0);
    assert_eq!(t_par.dropped(), 0);
    assert_eq!(t_one.to_jsonl(), t_par.to_jsonl());
}

#[test]
fn chrome_trace_is_well_formed() {
    let (fc, tracer) = traced_config();
    let net = fc.internet();
    collect_trials_sequential(&net, &RunConfig::default(), &fc);

    let chrome = json::parse(&tracer.to_chrome_trace()).unwrap();
    let events = chrome
        .get("traceEvents")
        .and_then(Json::as_array)
        .expect("traceEvents array");
    assert!(!events.is_empty());
    for e in events {
        let ph = e.get("ph").and_then(Json::as_str).expect("ph field");
        assert!(matches!(ph, "i" | "M"), "only instants and metadata: {ph}");
        assert!(e.get("name").and_then(Json::as_str).is_some());
        assert!(e.get("pid").and_then(Json::as_u64).is_some());
        assert!(e.get("tid").and_then(Json::as_u64).is_some());
        if ph == "i" {
            assert!(e.get("ts").and_then(Json::as_u64).is_some());
        }
    }
}

#[test]
fn jsonl_lines_parse_and_carry_trial_context() {
    let (fc, tracer) = traced_config();
    let net = fc.internet();
    collect_trials_sequential(&net, &RunConfig::default(), &fc);

    let jsonl = tracer.to_jsonl();
    let mut diag_done = 0usize;
    for line in jsonl.lines() {
        let v = json::parse(line).unwrap();
        assert!(v.get("name").and_then(Json::as_str).is_some());
        assert!(v.get("seq").and_then(Json::as_u64).is_some());
        assert!(
            v.get("wall_us").is_none(),
            "wall time is opt-in and must stay out of deterministic logs"
        );
        if v.get("name").and_then(Json::as_str) == Some("diag.done") {
            diag_done += 1;
            assert!(v.get("placement").and_then(Json::as_u64).is_some());
            assert!(v.get("trial").and_then(Json::as_u64).is_some());
        }
    }
    assert!(diag_done > 0, "every trial diagnoses at least once");
}
